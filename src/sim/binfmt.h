// Executable image metadata attached to inodes.
//
// A "binary" in the simulation is an inode carrying a BinaryImage. Instead of
// machine code, the image names an entry function registered with the kernel's
// BinaryRegistry; execve() maps the image (and its dynamic linker) into the
// task's address space and invokes that function. The remaining fields model
// the ELF properties that matter for resource access attacks and for stack
// unwinding:
//
//  * runpath  — DT_RPATH/DT_RUNPATH-style library search directories. An
//               insecure RUNPATH is exploit E1 (CVE-2006-1564).
//  * needed   — DT_NEEDED library names resolved by the simulated ld.so.
//  * has_eh_info / has_frame_pointers — whether the entrypoint context module
//               can unwind frames from this image precisely, via frame-pointer
//               chains, or only via the prologue-scan fallback (paper §4.4).
#ifndef SRC_SIM_BINFMT_H_
#define SRC_SIM_BINFMT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pf::sim {

// Offset of the entry point (_start) within a mapped image; the initial
// frame pushed by execve returns here.
inline constexpr uint64_t kEntryOffset = 0x10;

struct BinaryImage {
  // Key into the kernel's BinaryRegistry naming the entry function. Empty for
  // shared libraries (which are mapped, not executed directly).
  std::string entry_key;

  // DT_NEEDED: libraries the dynamic linker must locate and map.
  std::vector<std::string> needed;

  // DT_RUNPATH: embedded library search directories (searched before system
  // default paths by the simulated ld.so).
  std::vector<std::string> runpath;

  // Path of the program interpreter (dynamic linker); empty for static
  // binaries and shared libraries.
  std::string interp;

  // Unwind-information properties (see file comment).
  bool has_eh_info = true;
  bool has_frame_pointers = true;

  // Size of the mapped text segment; program counters for this image fall in
  // [base, base + text_size). Large enough for every published call-site
  // offset (the PHP include site sits at 0x27ad2c).
  uint64_t text_size = 0x400000;
};

}  // namespace pf::sim

#endif  // SRC_SIM_BINFMT_H_
