#include "src/sim/vfs.h"

#include <deque>

namespace pf::sim {

std::string_view InodeTypeName(InodeType t) {
  switch (t) {
    case InodeType::kRegular: return "reg";
    case InodeType::kDirectory: return "dir";
    case InodeType::kSymlink: return "lnk";
    case InodeType::kSocket: return "sock";
    case InodeType::kFifo: return "fifo";
    case InodeType::kCharDev: return "chr";
  }
  return "?";
}

Superblock::Superblock(Dev dev, std::string fstype) : dev_(dev), fstype_(std::move(fstype)) {}

std::shared_ptr<Inode> Superblock::Alloc(InodeType type, FileMode mode, Uid uid, Gid gid,
                                         Sid sid) {
  Ino ino;
  if (recycle_inodes_ && !free_list_.empty()) {
    ino = free_list_.back();
    free_list_.pop_back();
  } else {
    ino = next_ino_++;
  }
  auto inode = std::make_shared<Inode>();
  inode->ino = ino;
  inode->dev = dev_;
  inode->type = type;
  inode->mode = mode;
  inode->uid = uid;
  inode->gid = gid;
  inode->sid = sid;
  inode->generation = next_generation_++;
  inodes_[ino] = inode;
  return inode;
}

std::shared_ptr<Inode> Superblock::Get(Ino ino) const {
  auto it = inodes_.find(ino);
  return it == inodes_.end() ? nullptr : it->second;
}

void Superblock::MaybeFree(const std::shared_ptr<Inode>& inode) {
  if (inode->nlink > 0 || inode->open_count > 0) {
    return;
  }
  if (inodes_.erase(inode->ino) > 0) {
    free_list_.push_back(inode->ino);
  }
}

Vfs::Vfs() {
  // The root filesystem always exists (dev 1). Its root directory is its own
  // parent and carries no label until the kernel assigns one.
  Superblock& sb = CreateFs("rootfs", kInvalidSid);
  sb.root()->parent_dir = sb.root()->id();
}

Superblock& Vfs::CreateFs(const std::string& fstype, Sid root_sid, FileMode root_mode) {
  Dev dev = static_cast<Dev>(supers_.size() + 1);
  supers_.push_back(std::make_unique<Superblock>(dev, fstype));
  Superblock& sb = *supers_.back();
  sb.root_ = sb.Alloc(InodeType::kDirectory, root_mode, kRootUid, kRootGid, root_sid);
  sb.root_->nlink = 1;
  return sb;
}

void Vfs::Mount(FileId mountpoint, Dev sb) { mounts_[mountpoint] = sb; }

std::shared_ptr<Inode> Vfs::CrossMount(const std::shared_ptr<Inode>& dir) const {
  if (!dir || !dir->IsDir()) {
    return dir;
  }
  auto it = mounts_.find(dir->id());
  if (it == mounts_.end()) {
    return dir;
  }
  return supers_.at(it->second - 1)->root();
}

std::shared_ptr<Inode> Vfs::Get(FileId id) const {
  if (id.dev == 0 || id.dev > supers_.size()) {
    return nullptr;
  }
  return supers_[id.dev - 1]->Get(id.ino);
}

std::string Vfs::PathOf(FileId id) const {
  // BFS over directories from the root, crossing mounts.
  struct Item {
    std::shared_ptr<Inode> dir;
    std::string path;
  };
  std::deque<Item> queue;
  queue.push_back({root(), ""});
  if (root()->id() == id) {
    return "/";
  }
  while (!queue.empty()) {
    Item item = queue.front();
    queue.pop_front();
    for (const auto& [name, ino] : item.dir->entries) {
      auto child = Sb(item.dir->dev).Get(ino);
      if (!child) {
        continue;
      }
      std::string path = item.path + "/" + name;
      auto effective = CrossMount(child);
      if (child->id() == id || (effective && effective->id() == id)) {
        return path;
      }
      if (effective && effective->IsDir()) {
        queue.push_back({effective, path});
      }
    }
  }
  return "<unlinked dev=" + std::to_string(id.dev) + " ino=" + std::to_string(id.ino) + ">";
}

}  // namespace pf::sim
