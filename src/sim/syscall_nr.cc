#include "src/sim/syscall_nr.h"

#include <array>
#include <string>

namespace pf::sim {

namespace {
constexpr std::array<std::string_view, static_cast<size_t>(SyscallNr::kCount)> kNames = {
    "null",   "open",     "close",  "read",    "write",  "stat",        "lstat",
    "fstat",  "access",   "unlink", "mkdir",   "rmdir",  "symlink",     "link",
    "rename", "chmod",    "fchmod", "chown",   "chdir",  "readdir",     "mmap",
    "socket", "bind",     "listen", "connect", "fork",   "execve",      "exit",
    "waitpid", "kill",    "sigaction", "sigprocmask", "sigreturn", "pause",
    "getpid", "umask",
};
}  // namespace

std::string_view SyscallName(SyscallNr nr) {
  auto i = static_cast<size_t>(nr);
  if (i >= kNames.size()) {
    return "?";
  }
  return kNames[i];
}

std::optional<SyscallNr> SyscallFromName(std::string_view name) {
  if (name.rfind("NR_", 0) == 0) {
    name.remove_prefix(3);
  }
  for (size_t i = 0; i < kNames.size(); ++i) {
    if (kNames[i] == name) {
      return static_cast<SyscallNr>(i);
    }
  }
  return std::nullopt;
}

}  // namespace pf::sim
