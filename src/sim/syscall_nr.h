// System call numbers and names (for the SYSCALL_ARGS match module and the
// syscallbegin chain, e.g. rule R12 matching NR_sigreturn).
#ifndef SRC_SIM_SYSCALL_NR_H_
#define SRC_SIM_SYSCALL_NR_H_

#include <cstdint>
#include <optional>
#include <string_view>

namespace pf::sim {

enum class SyscallNr : int32_t {
  kNull = 0,  // getpid-style no-op used by the lmbench "null" microbenchmark
  kOpen,
  kClose,
  kRead,
  kWrite,
  kStat,
  kLstat,
  kFstat,
  kAccess,
  kUnlink,
  kMkdir,
  kRmdir,
  kSymlink,
  kLink,
  kRename,
  kChmod,
  kFchmod,
  kChown,
  kChdir,
  kReaddir,
  kMmap,
  kSocket,
  kBind,
  kListen,
  kConnect,
  kFork,
  kExecve,
  kExit,
  kWaitpid,
  kKill,
  kSigaction,
  kSigprocmask,
  kSigreturn,
  kPause,
  kGetpid,
  kUmask,
  kCount,  // sentinel
};

std::string_view SyscallName(SyscallNr nr);
std::optional<SyscallNr> SyscallFromName(std::string_view name);  // accepts "NR_open" / "open"

}  // namespace pf::sim

#endif  // SRC_SIM_SYSCALL_NR_H_
