// Pathname resolution (the namei analogue).
//
// Resolution walks component by component. Every directory lookup fires the
// DIR_SEARCH hook and every followed symlink fires LNK_FILE_READ — this
// per-component mediation is what lets Process Firewall rules implement
// safe_open-equivalent link checks entirely in "kernel" space (Figure 4).

#include <deque>

#include "src/sim/kernel.h"

namespace pf::sim {

namespace {

// Maximum symlink expansions before ELOOP (Linux uses 40).
constexpr int kMaxSymlinks = 40;

// Splits a path into components, dropping empty ones.
std::deque<std::string> Components(const std::string& path) {
  std::deque<std::string> out;
  size_t i = 0;
  while (i < path.size()) {
    size_t j = path.find('/', i);
    if (j == std::string::npos) {
      j = path.size();
    }
    if (j > i) {
      out.emplace_back(path.substr(i, j - i));
    }
    i = j + 1;
  }
  return out;
}

}  // namespace

int64_t Kernel::PathWalk(Task& task, const std::string& path, uint32_t flags, Nameidata* nd) {
  return PathWalkInternal(&task, nullptr, path, flags, nd);
}

int64_t Kernel::PathWalkInternal(Task* task, std::shared_ptr<Inode> start,
                                 const std::string& path, uint32_t flags, Nameidata* nd) {
  if (path.empty()) {
    return SysError(Err::kNoEnt);
  }
  if (path.size() > 4096) {
    return SysError(Err::kNameTooLong);
  }
  const bool hooks = (flags & kNoHooks) == 0;

  std::shared_ptr<Inode> cur;
  if (path[0] == '/') {
    cur = vfs_.root();
  } else if (start) {
    cur = std::move(start);
  } else if (task) {
    cur = vfs_.Get(task->cwd);
  }
  if (!cur) {
    return SysError(Err::kNoEnt);
  }

  std::deque<std::string> work = Components(path);
  if (work.empty()) {
    // Path was "/" (or equivalent).
    nd->parent = cur;
    nd->inode = cur;
    nd->last = ".";
    return 0;
  }

  int symlinks = 0;
  while (!work.empty()) {
    std::string comp = std::move(work.front());
    work.pop_front();
    const bool is_final = work.empty();

    if (!cur->IsDir()) {
      return SysError(Err::kNotDir);
    }
    if (hooks) {
      if (!DacPermitted(task->cred, *cur, AccessBit(Access::kExec))) {
        return SysError(Err::kAcces);
      }
      if (int64_t rv = HookInode(*task, Op::kDirSearch, *cur, comp); rv != 0) {
        return rv;
      }
    }

    if (comp == ".") {
      if (is_final) {
        nd->parent = cur;
        nd->inode = cur;
        nd->last = ".";
        return 0;
      }
      continue;
    }
    if (comp == "..") {
      auto parent = vfs_.Get(cur->parent_dir);
      if (!parent) {
        parent = vfs_.root();
      }
      if (is_final) {
        nd->parent = parent;
        nd->inode = parent;
        nd->last = "..";
        return 0;
      }
      cur = parent;
      continue;
    }

    auto it = cur->entries.find(comp);
    std::shared_ptr<Inode> child;
    if (it != cur->entries.end()) {
      child = vfs_.Sb(cur->dev).Get(it->second);
    }
    if (!child) {
      if (is_final && (flags & kWantParent)) {
        nd->parent = cur;
        nd->inode = nullptr;
        nd->last = comp;
        return 0;
      }
      return SysError(Err::kNoEnt);
    }

    // Symlink handling: intermediate links are always followed; the final
    // link is followed only with kFollowFinal.
    if (child->IsSymlink() && (!is_final || (flags & kFollowFinal))) {
      if (++symlinks > kMaxSymlinks) {
        return SysError(Err::kLoop);
      }
      if (hooks) {
        // Resolve the target's inode (without mediation of the peek itself)
        // so owner-comparison rules like R8 can see the target's attributes.
        std::shared_ptr<Inode> keep_alive;
        Inode* target_inode = nullptr;
        if (!child->symlink_target.empty()) {
          Nameidata peek;
          if (PathWalkInternal(nullptr, cur, child->symlink_target,
                               kNoHooks | kFollowFinal, &peek) == 0) {
            keep_alive = peek.inode;
            target_inode = keep_alive.get();
          }
        }
        if (int64_t rv = HookInode(*task, Op::kLnkFileRead, *child, comp, target_inode);
            rv != 0) {
          return rv;
        }
      }
      std::deque<std::string> target_comps = Components(child->symlink_target);
      if (!child->symlink_target.empty() && child->symlink_target[0] == '/') {
        cur = vfs_.root();
      }
      // Splice the target's components in front of the remaining work.
      for (auto rit = target_comps.rbegin(); rit != target_comps.rend(); ++rit) {
        work.push_front(std::move(*rit));
      }
      if (work.empty()) {
        // Link to "/" or an empty target resolving to the current dir.
        nd->parent = cur;
        nd->inode = cur;
        nd->last = ".";
        return 0;
      }
      continue;
    }

    if (is_final) {
      nd->parent = cur;
      nd->inode = vfs_.CrossMount(child);
      nd->last = comp;
      return 0;
    }
    cur = vfs_.CrossMount(child);
  }
  return SysError(Err::kNoEnt);
}

}  // namespace pf::sim
