// Process credentials: DAC identities plus the MAC subject label.
#ifndef SRC_SIM_CRED_H_
#define SRC_SIM_CRED_H_

#include "src/sim/types.h"

namespace pf::sim {

struct Cred {
  Uid uid = kRootUid;    // real uid
  Gid gid = kRootGid;    // real gid
  Uid euid = kRootUid;   // effective uid (used for permission checks)
  Gid egid = kRootGid;   // effective gid
  Sid sid = kInvalidSid; // MAC subject label (SELinux-style type)

  bool IsRoot() const { return euid == kRootUid; }

  // True when the process runs with elevated privilege relative to its
  // invoker (the setuid condition that ld.so uses to filter the
  // environment, Figure 1(b) of the paper).
  bool IsSetid() const { return uid != euid || gid != egid; }

  bool operator==(const Cred&) const = default;
};

}  // namespace pf::sim

#endif  // SRC_SIM_CRED_H_
