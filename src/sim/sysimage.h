// Builds the standard system image used by tests, examples, and benchmarks:
// an Ubuntu-10.04-flavoured filesystem tree with SELinux-style labels, the
// MAC policy (including the untrusted user_t domain), well-known users, and
// the binaries the paper's scenarios exercise. Program *bodies* are
// registered separately (src/apps installs them).
#ifndef SRC_SIM_SYSIMAGE_H_
#define SRC_SIM_SYSIMAGE_H_

#include "src/sim/kernel.h"

namespace pf::sim {

// Well-known users.
inline constexpr Uid kWebUid = 33;       // www-data
inline constexpr Uid kMessagebusUid = 102;
inline constexpr Uid kAliceUid = 1000;   // ordinary user
inline constexpr Uid kMalloryUid = 1001; // the adversary

struct SysImageOptions {
  // Number of extra content files under /var/www (web benchmarks).
  int web_files = 16;
  // Extra libraries under /usr/lib (search-path realism).
  int extra_libs = 8;
};

// Populates `kernel` with the base image. Idempotent-ish: call once on a
// fresh Kernel.
void BuildSysImage(Kernel& kernel, const SysImageOptions& opts = {});

// Paths of the standard binaries (BinaryImage entry_key == path; bodies are
// registered under the same key).
inline constexpr const char* kLdso = "/lib/ld-2.15.so";
inline constexpr const char* kLibc = "/lib/libc-2.15.so";
inline constexpr const char* kLibDbus = "/lib/libdbus-1.so.3";
inline constexpr const char* kBinTrue = "/bin/true";
inline constexpr const char* kBinFalse = "/bin/false";
inline constexpr const char* kBinSh = "/bin/sh";
inline constexpr const char* kPython = "/usr/bin/python2.7";
inline constexpr const char* kPhp = "/usr/bin/php5";
inline constexpr const char* kJava = "/usr/bin/java";
inline constexpr const char* kApache = "/usr/bin/apache2";
inline constexpr const char* kDbusDaemon = "/bin/dbus-daemon";
inline constexpr const char* kSshd = "/usr/sbin/sshd";
inline constexpr const char* kIcecat = "/usr/bin/icecat";
inline constexpr const char* kDstat = "/usr/bin/dstat";
inline constexpr const char* kSuidHelper = "/usr/bin/passwd-helper";  // setuid-root demo binary

}  // namespace pf::sim

#endif  // SRC_SIM_SYSIMAGE_H_
