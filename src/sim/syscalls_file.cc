// File and directory system calls.

#include "src/sim/kernel.h"

namespace pf::sim {

namespace {
uint32_t AccModeBits(uint32_t flags) {
  switch (flags & kOAccMode) {
    case kORdOnly: return AccessBit(Access::kRead);
    case kOWrOnly: return AccessBit(Access::kWrite);
    default: return AccessBit(Access::kRead) | AccessBit(Access::kWrite);
  }
}
}  // namespace

std::shared_ptr<Inode> Kernel::CreateAt(Task& task, Nameidata& nd, InodeType type,
                                        FileMode mode) {
  auto inode = vfs_.Sb(nd.parent->dev).Alloc(type, mode & ~task.umask & kModePermMask,
                                             task.cred.euid, task.cred.egid,
                                             nd.parent->sid);  // label inherited from parent
  inode->nlink = 1;
  inode->mtime = inode->ctime = inode->atime = tick_;
  if (type == InodeType::kDirectory) {
    inode->parent_dir = nd.parent->id();
  }
  nd.parent->entries[nd.last] = inode->ino;
  nd.parent->mtime = tick_;
  return inode;
}

void Kernel::DropLink(const std::shared_ptr<Inode>& dir, const std::string& name,
                      const std::shared_ptr<Inode>& victim) {
  dir->entries.erase(name);
  dir->mtime = tick_;
  if (victim->nlink > 0) {
    --victim->nlink;
  }
  vfs_.Sb(victim->dev).MaybeFree(victim);
}

int64_t Kernel::SysOpen(Task& task, const std::string& path, uint32_t flags, FileMode mode) {
  SyscallScope scope(*this, task, SyscallNr::kOpen, {static_cast<int64_t>(flags)});
  if (scope.denied()) {
    return scope.error();
  }

  uint32_t walk = 0;
  if ((flags & kONofollow) == 0 && (flags & (kOCreat | kOExcl)) != (kOCreat | kOExcl)) {
    walk |= kFollowFinal;
  }
  if (flags & kOCreat) {
    walk |= kWantParent;
  }
  Nameidata nd;
  if (int64_t rv = PathWalk(task, path, walk, &nd); rv != 0) {
    return rv;
  }

  std::shared_ptr<Inode> inode = nd.inode;
  if (inode && inode->IsSymlink()) {
    // Reached only with O_NOFOLLOW or O_CREAT|O_EXCL on a link.
    return SysError(Err::kLoop);
  }
  if (inode && (flags & kOCreat) && (flags & kOExcl)) {
    return SysError(Err::kExist);
  }

  if (!inode) {
    // O_CREAT path: need write on the parent directory.
    if (!DacPermitted(task.cred, *nd.parent,
                      AccessBit(Access::kWrite) | AccessBit(Access::kExec))) {
      return SysError(Err::kAcces);
    }
    if (int64_t rv = HookInode(task, Op::kDirAddName, *nd.parent, nd.last); rv != 0) {
      return rv;
    }
    inode = CreateAt(task, nd, InodeType::kRegular, mode);
    if (int64_t rv = HookInode(task, Op::kFileCreate, *inode, path); rv != 0) {
      // Undo the creation on denial.
      DropLink(nd.parent, nd.last, inode);
      return rv;
    }
  } else {
    if (inode->IsDir() && (flags & kOAccMode) != kORdOnly) {
      return SysError(Err::kIsDir);
    }
    if ((flags & kODirectory) && !inode->IsDir()) {
      return SysError(Err::kNotDir);
    }
    if (!DacPermitted(task.cred, *inode, AccModeBits(flags))) {
      return SysError(Err::kAcces);
    }
    if (int64_t rv = HookInode(task, Op::kFileOpen, *inode, path); rv != 0) {
      return rv;
    }
    if ((flags & kOTrunc) && inode->IsRegular()) {
      inode->data.clear();
      inode->mtime = tick_;
    }
  }

  auto file = std::make_shared<File>();
  file->inode = inode;
  file->path = path;
  file->flags = flags;
  if (flags & kOAppend) {
    file->offset = inode->data.size();
  }
  ++inode->open_count;
  return task.fds.Install(std::move(file));
}

int64_t Kernel::SysClose(Task& task, int fd) {
  SyscallScope scope(*this, task, SyscallNr::kClose, {fd});
  if (scope.denied()) {
    return scope.error();
  }
  auto file = task.fds.Remove(fd);
  if (!file) {
    return SysError(Err::kBadF);
  }
  if (file.use_count() == 1 && file->inode) {
    // Last descriptor referencing this open file description.
    if (file->inode->open_count > 0) {
      --file->inode->open_count;
    }
    // Anonymous inodes (unbound sockets) live outside any superblock.
    if (file->inode->dev != 0) {
      vfs_.Sb(file->inode->dev).MaybeFree(file->inode);
    }
  }
  return 0;
}

int64_t Kernel::SysRead(Task& task, int fd, std::string* out, uint64_t count) {
  SyscallScope scope(*this, task, SyscallNr::kRead, {fd, static_cast<int64_t>(count)});
  if (scope.denied()) {
    return scope.error();
  }
  auto file = task.fds.Get(fd);
  if (!file) {
    return SysError(Err::kBadF);
  }
  if (!file->readable()) {
    return SysError(Err::kBadF);
  }
  if (int64_t rv = HookInode(task, Op::kFileRead, *file->inode, ""); rv != 0) {
    return rv;
  }
  const std::string& data = file->inode->data;
  if (file->offset >= data.size()) {
    out->clear();
    return 0;
  }
  uint64_t n = std::min<uint64_t>(count, data.size() - file->offset);
  out->assign(data, file->offset, n);
  file->offset += n;
  file->inode->atime = tick_;
  return static_cast<int64_t>(n);
}

int64_t Kernel::SysWrite(Task& task, int fd, std::string_view data) {
  SyscallScope scope(*this, task, SyscallNr::kWrite,
                     {fd, static_cast<int64_t>(data.size())});
  if (scope.denied()) {
    return scope.error();
  }
  auto file = task.fds.Get(fd);
  if (!file) {
    return SysError(Err::kBadF);
  }
  if (!file->writable()) {
    return SysError(Err::kBadF);
  }
  if (int64_t rv = HookInode(task, Op::kFileWrite, *file->inode, ""); rv != 0) {
    return rv;
  }
  std::string& dst = file->inode->data;
  if (file->offset > dst.size()) {
    dst.resize(file->offset, '\0');
  }
  dst.replace(file->offset, data.size(), data);
  file->offset += data.size();
  file->inode->mtime = tick_;
  return static_cast<int64_t>(data.size());
}

int64_t Kernel::DoUnlinkCommon(Task& task, const std::string& path, bool rmdir) {
  Nameidata nd;
  if (int64_t rv = PathWalk(task, path, 0, &nd); rv != 0) {
    return rv;
  }
  auto victim = nd.inode;
  if (rmdir) {
    if (!victim->IsDir()) {
      return SysError(Err::kNotDir);
    }
    if (!victim->entries.empty()) {
      return SysError(Err::kNotEmpty);
    }
  } else if (victim->IsDir()) {
    return SysError(Err::kIsDir);
  }
  if (!DacMayDelete(task.cred, *nd.parent, *victim)) {
    return SysError(Err::kAcces);
  }
  if (int64_t rv = HookInode(task, Op::kDirRemoveName, *nd.parent, nd.last); rv != 0) {
    return rv;
  }
  if (int64_t rv = HookInode(task, Op::kFileUnlink, *victim, path); rv != 0) {
    return rv;
  }
  DropLink(nd.parent, nd.last, victim);
  return 0;
}

int64_t Kernel::SysUnlink(Task& task, const std::string& path) {
  SyscallScope scope(*this, task, SyscallNr::kUnlink);
  if (scope.denied()) {
    return scope.error();
  }
  return DoUnlinkCommon(task, path, /*rmdir=*/false);
}

int64_t Kernel::SysRmdir(Task& task, const std::string& path) {
  SyscallScope scope(*this, task, SyscallNr::kRmdir);
  if (scope.denied()) {
    return scope.error();
  }
  return DoUnlinkCommon(task, path, /*rmdir=*/true);
}

int64_t Kernel::SysMkdir(Task& task, const std::string& path, FileMode mode) {
  SyscallScope scope(*this, task, SyscallNr::kMkdir);
  if (scope.denied()) {
    return scope.error();
  }
  Nameidata nd;
  if (int64_t rv = PathWalk(task, path, kWantParent, &nd); rv != 0) {
    return rv;
  }
  if (nd.inode) {
    return SysError(Err::kExist);
  }
  if (!DacPermitted(task.cred, *nd.parent,
                    AccessBit(Access::kWrite) | AccessBit(Access::kExec))) {
    return SysError(Err::kAcces);
  }
  if (int64_t rv = HookInode(task, Op::kDirAddName, *nd.parent, nd.last); rv != 0) {
    return rv;
  }
  auto inode = CreateAt(task, nd, InodeType::kDirectory, mode);
  if (int64_t rv = HookInode(task, Op::kFileCreate, *inode, path); rv != 0) {
    DropLink(nd.parent, nd.last, inode);
    return rv;
  }
  return 0;
}

int64_t Kernel::SysSymlink(Task& task, const std::string& target, const std::string& linkpath) {
  SyscallScope scope(*this, task, SyscallNr::kSymlink);
  if (scope.denied()) {
    return scope.error();
  }
  Nameidata nd;
  if (int64_t rv = PathWalk(task, linkpath, kWantParent, &nd); rv != 0) {
    return rv;
  }
  if (nd.inode) {
    return SysError(Err::kExist);
  }
  if (!DacPermitted(task.cred, *nd.parent,
                    AccessBit(Access::kWrite) | AccessBit(Access::kExec))) {
    return SysError(Err::kAcces);
  }
  if (int64_t rv = HookInode(task, Op::kDirAddName, *nd.parent, nd.last); rv != 0) {
    return rv;
  }
  auto inode = CreateAt(task, nd, InodeType::kSymlink, 0777);
  inode->symlink_target = target;
  if (int64_t rv = HookInode(task, Op::kFileCreate, *inode, linkpath); rv != 0) {
    DropLink(nd.parent, nd.last, inode);
    return rv;
  }
  return 0;
}

int64_t Kernel::SysLink(Task& task, const std::string& oldpath, const std::string& newpath) {
  SyscallScope scope(*this, task, SyscallNr::kLink);
  if (scope.denied()) {
    return scope.error();
  }
  Nameidata old_nd;
  if (int64_t rv = PathWalk(task, oldpath, 0, &old_nd); rv != 0) {
    return rv;
  }
  if (old_nd.inode->IsDir()) {
    return SysError(Err::kPerm);
  }
  Nameidata new_nd;
  if (int64_t rv = PathWalk(task, newpath, kWantParent, &new_nd); rv != 0) {
    return rv;
  }
  if (new_nd.inode) {
    return SysError(Err::kExist);
  }
  if (new_nd.parent->dev != old_nd.inode->dev) {
    return SysError(Err::kXDev);
  }
  if (!DacPermitted(task.cred, *new_nd.parent,
                    AccessBit(Access::kWrite) | AccessBit(Access::kExec))) {
    return SysError(Err::kAcces);
  }
  if (int64_t rv = HookInode(task, Op::kDirAddName, *new_nd.parent, new_nd.last); rv != 0) {
    return rv;
  }
  new_nd.parent->entries[new_nd.last] = old_nd.inode->ino;
  ++old_nd.inode->nlink;
  return 0;
}

int64_t Kernel::SysRename(Task& task, const std::string& oldpath, const std::string& newpath) {
  SyscallScope scope(*this, task, SyscallNr::kRename);
  if (scope.denied()) {
    return scope.error();
  }
  Nameidata old_nd;
  if (int64_t rv = PathWalk(task, oldpath, 0, &old_nd); rv != 0) {
    return rv;
  }
  Nameidata new_nd;
  if (int64_t rv = PathWalk(task, newpath, kWantParent, &new_nd); rv != 0) {
    return rv;
  }
  if (new_nd.parent->dev != old_nd.inode->dev) {
    return SysError(Err::kXDev);
  }
  if (!DacMayDelete(task.cred, *old_nd.parent, *old_nd.inode)) {
    return SysError(Err::kAcces);
  }
  if (!DacPermitted(task.cred, *new_nd.parent,
                    AccessBit(Access::kWrite) | AccessBit(Access::kExec))) {
    return SysError(Err::kAcces);
  }
  if (int64_t rv = HookInode(task, Op::kDirRemoveName, *old_nd.parent, old_nd.last); rv != 0) {
    return rv;
  }
  if (int64_t rv = HookInode(task, Op::kDirAddName, *new_nd.parent, new_nd.last); rv != 0) {
    return rv;
  }
  // Replace an existing destination atomically.
  if (new_nd.inode) {
    DropLink(new_nd.parent, new_nd.last, new_nd.inode);
  }
  new_nd.parent->entries[new_nd.last] = old_nd.inode->ino;
  old_nd.parent->entries.erase(old_nd.last);
  if (old_nd.inode->IsDir()) {
    old_nd.inode->parent_dir = new_nd.parent->id();
  }
  return 0;
}

int64_t Kernel::SysChmod(Task& task, const std::string& path, FileMode mode) {
  SyscallScope scope(*this, task, SyscallNr::kChmod);
  if (scope.denied()) {
    return scope.error();
  }
  Nameidata nd;
  if (int64_t rv = PathWalk(task, path, kFollowFinal, &nd); rv != 0) {
    return rv;
  }
  if (!task.cred.IsRoot() && task.cred.euid != nd.inode->uid) {
    return SysError(Err::kPerm);
  }
  Op op = nd.inode->IsSocket() ? Op::kSocketSetattr : Op::kFileSetattr;
  if (int64_t rv = HookInode(task, op, *nd.inode, path); rv != 0) {
    return rv;
  }
  nd.inode->mode = (nd.inode->mode & ~kModePermMask) | (mode & kModePermMask);
  nd.inode->ctime = tick_;
  return 0;
}

int64_t Kernel::SysFchmod(Task& task, int fd, FileMode mode) {
  SyscallScope scope(*this, task, SyscallNr::kFchmod, {fd});
  if (scope.denied()) {
    return scope.error();
  }
  auto file = task.fds.Get(fd);
  if (!file) {
    return SysError(Err::kBadF);
  }
  if (!task.cred.IsRoot() && task.cred.euid != file->inode->uid) {
    return SysError(Err::kPerm);
  }
  Op op = file->inode->IsSocket() ? Op::kSocketSetattr : Op::kFileSetattr;
  if (int64_t rv = HookInode(task, op, *file->inode, ""); rv != 0) {
    return rv;
  }
  file->inode->mode = (file->inode->mode & ~kModePermMask) | (mode & kModePermMask);
  file->inode->ctime = tick_;
  return 0;
}

int64_t Kernel::SysChown(Task& task, const std::string& path, Uid uid, Gid gid) {
  SyscallScope scope(*this, task, SyscallNr::kChown);
  if (scope.denied()) {
    return scope.error();
  }
  Nameidata nd;
  if (int64_t rv = PathWalk(task, path, kFollowFinal, &nd); rv != 0) {
    return rv;
  }
  if (!task.cred.IsRoot()) {
    return SysError(Err::kPerm);
  }
  if (int64_t rv = HookInode(task, Op::kFileSetattr, *nd.inode, path); rv != 0) {
    return rv;
  }
  nd.inode->uid = uid;
  nd.inode->gid = gid;
  nd.inode->ctime = tick_;
  return 0;
}

int64_t Kernel::SysChdir(Task& task, const std::string& path) {
  SyscallScope scope(*this, task, SyscallNr::kChdir);
  if (scope.denied()) {
    return scope.error();
  }
  Nameidata nd;
  if (int64_t rv = PathWalk(task, path, kFollowFinal, &nd); rv != 0) {
    return rv;
  }
  if (!nd.inode->IsDir()) {
    return SysError(Err::kNotDir);
  }
  if (!DacPermitted(task.cred, *nd.inode, AccessBit(Access::kExec))) {
    return SysError(Err::kAcces);
  }
  task.cwd = nd.inode->id();
  return 0;
}

int64_t Kernel::SysReaddir(Task& task, const std::string& path,
                           std::vector<std::string>* names) {
  SyscallScope scope(*this, task, SyscallNr::kReaddir);
  if (scope.denied()) {
    return scope.error();
  }
  Nameidata nd;
  if (int64_t rv = PathWalk(task, path, kFollowFinal, &nd); rv != 0) {
    return rv;
  }
  if (!nd.inode->IsDir()) {
    return SysError(Err::kNotDir);
  }
  if (!DacPermitted(task.cred, *nd.inode, AccessBit(Access::kRead))) {
    return SysError(Err::kAcces);
  }
  if (int64_t rv = HookInode(task, Op::kFileRead, *nd.inode, path); rv != 0) {
    return rv;
  }
  names->clear();
  for (const auto& [name, ino] : nd.inode->entries) {
    names->push_back(name);
  }
  return static_cast<int64_t>(names->size());
}

int64_t Kernel::SysMmap(Task& task, int fd) {
  SyscallScope scope(*this, task, SyscallNr::kMmap, {fd});
  if (scope.denied()) {
    return scope.error();
  }
  auto file = task.fds.Get(fd);
  if (!file) {
    return SysError(Err::kBadF);
  }
  if (!file->inode->IsRegular()) {
    return SysError(Err::kInval);
  }
  if (int64_t rv = HookInode(task, Op::kFileMmap, *file->inode, ""); rv != 0) {
    return rv;
  }
  Mapping m;
  m.file = file->inode->id();
  m.path = file->path.empty() ? vfs_.PathOf(m.file) : file->path;
  m.base = AslrMapBase();
  if (file->inode->binary) {
    m.size = file->inode->binary->text_size;
    m.has_eh_info = file->inode->binary->has_eh_info;
    m.has_frame_pointers = file->inode->binary->has_frame_pointers;
  } else {
    m.size = std::max<uint64_t>(file->inode->data.size(), 0x1000);
  }
  Addr base = m.base;
  task.mm.AddMapping(std::move(m));
  return static_cast<int64_t>(base);
}

}  // namespace pf::sim
