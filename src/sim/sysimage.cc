#include "src/sim/sysimage.h"

#include <memory>
#include <string>

namespace pf::sim {

namespace {

// Attaches a BinaryImage to an already-created file inode.
void MakeBinary(Kernel& k, const std::string& path, bool is_lib,
                std::vector<std::string> needed = {}, std::vector<std::string> runpath = {},
                bool eh = true, bool fp = true) {
  auto inode = k.LookupNoHooks(path);
  if (!inode) {
    return;
  }
  auto img = std::make_unique<BinaryImage>();
  if (!is_lib) {
    img->entry_key = path;
    img->interp = kLdso;
  }
  img->needed = std::move(needed);
  img->runpath = std::move(runpath);
  img->has_eh_info = eh;
  img->has_frame_pointers = fp;
  inode->binary = std::move(img);
  inode->mode |= 0111;
}

}  // namespace

void BuildSysImage(Kernel& k, const SysImageOptions& opts) {
  // --- directory tree (mode, owner, label) ---
  k.MkDirAt("/bin", 0755, 0, 0, "bin_t");
  k.MkDirAt("/lib", 0755, 0, 0, "lib_t");
  k.MkDirAt("/usr", 0755, 0, 0, "usr_t");
  k.MkDirAt("/usr/bin", 0755, 0, 0, "bin_t");
  k.MkDirAt("/usr/sbin", 0755, 0, 0, "bin_t");
  k.MkDirAt("/usr/lib", 0755, 0, 0, "lib_t");
  k.MkDirAt("/usr/lib/python2.7", 0755, 0, 0, "lib_t");
  k.MkDirAt("/usr/share", 0755, 0, 0, "usr_t");
  k.MkDirAt("/usr/share/python-modules", 0755, 0, 0, "usr_t");
  k.MkDirAt("/etc", 0755, 0, 0, "etc_t");
  k.MkDirAt("/etc/init.d", 0755, 0, 0, "etc_t");
  k.MkDirAt("/var", 0755, 0, 0, "var_t");
  k.MkDirAt("/var/run", 0755, 0, 0, "var_run_t");
  k.MkDirAt("/var/run/dbus", 0755, kMessagebusUid, kMessagebusUid,
            "system_dbusd_var_run_t");
  k.MkDirAt("/var/www", 0755, 0, 0, "httpd_sys_content_t");
  k.MkDirAt("/var/www/users", 0755, 0, 0, "httpd_user_content_t");
  k.MkDirAt("/var/log", 0755, 0, 0, "var_log_t");
  k.MkDirAt("/home", 0755, 0, 0, "home_root_t");
  k.MkDirAt("/home/alice", 0755, kAliceUid, kAliceUid, "user_home_t");
  k.MkDirAt("/home/mallory", 0755, kMalloryUid, kMalloryUid, "user_home_t");
  // World-writable, sticky /tmp: the classic shared directory.
  k.MkDirAt("/tmp", 01777, 0, 0, "tmp_t");

  // --- core configuration files ---
  k.MkFileAt("/etc/passwd", "root:x:0:0\nwww-data:x:33:33\nalice:x:1000:1000\n", 0644, 0, 0,
             "etc_t");
  k.MkFileAt("/etc/shadow", "root:$6$secret\n", 0600, 0, 0, "shadow_t");
  k.MkFileAt("/etc/ld.so.conf", "/lib\n/usr/lib\n", 0644, 0, 0, "etc_t");
  k.MkFileAt("/etc/apache2.conf", "DocumentRoot /var/www\n", 0644, 0, 0, "httpd_config_t");
  k.MkFileAt("/etc/java.conf", "jvm.options=-Xmx64m\n", 0644, 0, 0, "etc_t");

  // --- binaries & libraries (contents are placeholders) ---
  const char* bins[] = {kBinTrue, kBinFalse, kBinSh,  kPython,     kPhp,   kJava,
                        kApache,  kDbusDaemon, kSshd, kIcecat,     kDstat, kSuidHelper};
  for (const char* b : bins) {
    k.MkFileAt(b, "\x7f""ELF", 0755, 0, 0, "bin_t");
  }
  k.MkFileAt(kLdso, "\x7f""ELF", 0755, 0, 0, "ld_so_t");
  k.MkFileAt(kLibc, "\x7f""ELF", 0644, 0, 0, "lib_t");
  k.MkFileAt(kLibDbus, "\x7f""ELF", 0644, 0, 0, "lib_t");
  for (int i = 0; i < opts.extra_libs; ++i) {
    k.MkFileAt("/usr/lib/lib" + std::to_string(i) + ".so", "\x7f""ELF", 0644, 0, 0, "lib_t");
  }
  k.MkFileAt("/usr/lib/python2.7/os.py", "# stdlib\n", 0644, 0, 0, "lib_t");
  k.MkFileAt("/usr/lib/python2.7/sys.py", "# stdlib\n", 0644, 0, 0, "lib_t");

  MakeBinary(k, kLdso, /*is_lib=*/true);
  // ld.so is special: it is its own interpreter and has an entry used by
  // direct invocation; model it as a library plus entry key.
  if (auto ldso = k.LookupNoHooks(kLdso); ldso && ldso->binary) {
    ldso->binary->entry_key = kLdso;
  }
  MakeBinary(k, kLibc, /*is_lib=*/true);
  MakeBinary(k, kLibDbus, /*is_lib=*/true);
  MakeBinary(k, kBinTrue, false, {kLibc});
  MakeBinary(k, kBinFalse, false, {kLibc});
  MakeBinary(k, kBinSh, false, {kLibc});
  MakeBinary(k, kPython, false, {kLibc});
  MakeBinary(k, kPhp, false, {kLibc});
  MakeBinary(k, kJava, false, {kLibc});
  MakeBinary(k, kApache, false, {kLibc});
  MakeBinary(k, kDbusDaemon, false, {kLibc, kLibDbus});
  MakeBinary(k, kSshd, false, {kLibc});
  MakeBinary(k, kIcecat, false, {kLibc});
  MakeBinary(k, kDstat, false, {kLibc});
  MakeBinary(k, kSuidHelper, false, {kLibc, kLibDbus});
  // The setuid-root helper binary (victim of E3-style attacks).
  if (auto helper = k.LookupNoHooks(kSuidHelper)) {
    helper->mode |= kModeSetuid;
    helper->uid = 0;
  }

  // --- web content ---
  k.MkFileAt("/var/www/index.html", "<html>home</html>", 0644, kWebUid, kWebUid,
             "httpd_sys_content_t");
  for (int i = 0; i < opts.web_files; ++i) {
    k.MkFileAt("/var/www/page" + std::to_string(i) + ".html", "<html>page</html>", 0644,
               kWebUid, kWebUid, "httpd_sys_content_t");
  }
  k.MkDirAt("/var/www/app", 0755, kWebUid, kWebUid, "httpd_user_script_exec_t");
  k.MkFileAt("/var/www/app/index.php", "<?php include($_GET['page']); ?>", 0644, kWebUid,
             kWebUid, "httpd_user_script_exec_t");
  k.MkFileAt("/var/www/app/gcalendar.php", "<?php /* component */ ?>", 0644, kWebUid, kWebUid,
             "httpd_user_script_exec_t");

  // --- MAC policy ---
  MacPolicy& pol = k.policy();
  LabelRegistry& labels = k.labels();
  Sid user_t = labels.Intern("user_t");
  pol.MarkUntrusted(user_t);
  // What the untrusted user domain may touch. This drives adversary
  // accessibility and the SYSHIGH set.
  pol.Allow(user_t, labels.Intern("tmp_t"), kMacAll);
  pol.Allow(user_t, labels.Intern("user_home_t"), kMacAll);
  pol.Allow(user_t, labels.Intern("user_tmp_t"), kMacAll);
  pol.Allow(user_t, labels.Intern("httpd_user_content_t"), kMacAll);
  pol.Allow(user_t, labels.Intern("etc_t"), kMacRead);
  pol.Allow(user_t, labels.Intern("lib_t"), kMacRead | kMacExec);
  pol.Allow(user_t, labels.Intern("bin_t"), kMacRead | kMacExec);
  pol.Allow(user_t, labels.Intern("usr_t"), kMacRead);
  // Interned so SYSHIGH queries see them even before first use.
  for (const char* t :
       {"root_t", "etc_t", "shadow_t", "bin_t", "lib_t", "ld_so_t", "usr_t", "var_t",
        "var_run_t", "var_log_t", "system_dbusd_var_run_t", "httpd_sys_content_t",
        "httpd_config_t", "httpd_user_script_exec_t", "textrel_shlib_t", "httpd_modules_t",
        "init_t", "httpd_t", "sshd_t", "system_dbusd_t", "java_t"}) {
    labels.Intern(t);
  }
}

}  // namespace pf::sim
