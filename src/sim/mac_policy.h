// SELinux-style mandatory access control policy.
//
// The policy stores type-enforcement allow rules (subject label -> object
// label -> permission set). Two derived queries drive the Process Firewall:
//
//  * Adversary accessibility (paper footnote 2): a resource is
//    adversary-accessible for a victim if the policy grants some adversary
//    subject write (integrity attacks) or read (secrecy attacks) access.
//    Adversaries of a subject are the labels in the configured untrusted set,
//    i.e. labels outside the system TCB.
//
//  * SYSHIGH (paper Section 5.2): the set of trusted-computing-base labels.
//    Subject labels are SYSHIGH if they are not untrusted; object labels are
//    SYSHIGH if no untrusted subject may write them.
//
// The MAC module can run permissive (labels tracked, nothing denied) or
// enforcing; the Process Firewall works in either mode, as in the paper where
// PF complements the existing authorization system.
#ifndef SRC_SIM_MAC_POLICY_H_
#define SRC_SIM_MAC_POLICY_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/sim/label.h"
#include "src/sim/types.h"

namespace pf::sim {

// Permission bits for MAC allow rules.
enum MacPerm : uint32_t {
  kMacRead = 1u << 0,
  kMacWrite = 1u << 1,
  kMacExec = 1u << 2,
  kMacCreate = 1u << 3,
  kMacConnect = 1u << 4,
  kMacBind = 1u << 5,
  kMacSignal = 1u << 6,
  kMacAll = 0xffffffffu,
};

class MacPolicy {
 public:
  explicit MacPolicy(LabelRegistry* labels) : labels_(labels) {}

  // Adds an allow rule: subject may perform `perms` on objects of `object`.
  void Allow(Sid subject, Sid object, uint32_t perms);
  void Allow(std::string_view subject, std::string_view object, uint32_t perms);

  // Marks a subject label as untrusted (outside the TCB); such subjects are
  // the adversaries considered for adversary-accessibility.
  void MarkUntrusted(Sid subject);
  void MarkUntrusted(std::string_view subject);

  bool IsUntrusted(Sid subject) const { return untrusted_.count(subject) != 0; }

  // Whether MAC denials are enforced; when false the policy is permissive
  // and only label bookkeeping and derived queries are active.
  void set_enforcing(bool on) {
    enforcing_ = on;
    BumpEpoch();
  }
  bool enforcing() const { return enforcing_; }

  // Monotonic mutation counter, bumped on every policy change (allow rules,
  // untrusted set, enforcing mode). Derived queries such as adversary
  // accessibility and SYSHIGH membership can only change when the epoch
  // moves, so caches keyed on the epoch (the engine's verdict cache) are
  // invalidated by construction.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  // Enforcement query (subject to `enforcing()`, root is not exempt in MAC).
  bool Check(Sid subject, Sid object, uint32_t perms) const;

  // Raw policy query, independent of enforcing mode.
  bool Grants(Sid subject, Sid object, uint32_t perms) const;

  // True if some untrusted subject may write objects of this label
  // (integrity-relevant adversary accessibility).
  bool AdversaryWritable(Sid object) const;

  // True if some untrusted subject may read objects of this label
  // (secrecy-relevant adversary accessibility).
  bool AdversaryReadable(Sid object) const;

  // SYSHIGH membership (see file comment). Used to expand the SYSHIGH
  // keyword in pftables rules.
  bool IsSyshighSubject(Sid subject) const;
  bool IsSyshighObject(Sid object) const;

  // Materializes the current SYSHIGH object set over all interned labels.
  std::vector<Sid> SyshighObjects() const;

  LabelRegistry& labels() { return *labels_; }
  const LabelRegistry& labels() const { return *labels_; }

 private:
  struct Key {
    Sid subject;
    Sid object;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return std::hash<uint64_t>()((static_cast<uint64_t>(k.subject) << 32) | k.object);
    }
  };

  uint32_t PermsFor(Sid subject, Sid object) const;

  uint8_t AdversaryBits(Sid object) const;

  void BumpEpoch() { epoch_.fetch_add(1, std::memory_order_release); }

  LabelRegistry* labels_;
  std::unordered_map<Key, uint32_t, KeyHash> rules_;
  std::unordered_set<Sid> untrusted_;
  bool enforcing_ = false;
  // Caches for the derived queries; invalidated on policy mutation. The
  // mutex makes the lazily-filled cache safe to query from concurrent hook
  // evaluations (policy mutation stays a control-plane-only operation).
  mutable std::mutex adversary_mu_;
  mutable std::unordered_map<Sid, uint8_t> adversary_cache_;
  std::atomic<uint64_t> epoch_{0};
};

}  // namespace pf::sim

#endif  // SRC_SIM_MAC_POLICY_H_
