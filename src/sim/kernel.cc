#include "src/sim/kernel.h"

#include <cassert>
#include <chrono>

namespace pf::sim {

Kernel::Kernel(uint64_t seed) : rng_(seed) {
  vfs_.root()->sid = labels_.Intern("root_t");

  init_task_ = std::make_unique<Task>();
  init_task_->pid = 1;
  init_task_->comm = "init";
  init_task_->cwd = vfs_.root()->id();
  init_task_->cred.sid = labels_.Intern("init_t");
}

Kernel::~Kernel() = default;

size_t Kernel::AddModule(std::unique_ptr<SecurityModule> module) {
  assert(modules_.size() < kMaxSecuritySlots);
  modules_.push_back(std::move(module));
  return modules_.size() - 1;
}

SecurityModule* Kernel::FindModule(std::string_view name) {
  for (auto& m : modules_) {
    if (m->ModuleName() == name) {
      return m.get();
    }
  }
  return nullptr;
}

void Kernel::RegisterProgram(const std::string& key, ProgMain main) {
  programs_[key] = std::move(main);
}

const ProgMain* Kernel::FindProgram(const std::string& key) const {
  auto it = programs_.find(key);
  return it == programs_.end() ? nullptr : &it->second;
}

// --- image construction -----------------------------------------------------

namespace {
// Splits "/a/b/c" into the directory part and the final component.
std::pair<std::string, std::string> SplitPath(const std::string& path) {
  auto slash = path.rfind('/');
  if (slash == std::string::npos) {
    return {".", path};
  }
  if (slash == 0) {
    return {"/", path.substr(1)};
  }
  return {path.substr(0, slash), path.substr(slash + 1)};
}
}  // namespace

std::shared_ptr<Inode> Kernel::MkDirAt(const std::string& path, FileMode mode, Uid uid, Gid gid,
                                       std::string_view label) {
  auto [dirpath, name] = SplitPath(path);
  Nameidata nd;
  if (PathWalk(*init_task_, dirpath, kNoHooks | kFollowFinal, &nd) != 0 || !nd.inode ||
      !nd.inode->IsDir()) {
    return nullptr;
  }
  auto dir = nd.inode;
  if (auto it = dir->entries.find(name); it != dir->entries.end()) {
    auto existing = vfs_.Sb(dir->dev).Get(it->second);
    return existing && existing->IsDir() ? existing : nullptr;
  }
  auto inode = vfs_.Sb(dir->dev).Alloc(InodeType::kDirectory, mode, uid, gid,
                                       labels_.Intern(label));
  inode->nlink = 1;
  inode->parent_dir = dir->id();
  dir->entries[name] = inode->ino;
  return inode;
}

std::shared_ptr<Inode> Kernel::MkFileAt(const std::string& path, std::string contents,
                                        FileMode mode, Uid uid, Gid gid, std::string_view label) {
  auto [dirpath, name] = SplitPath(path);
  Nameidata nd;
  if (PathWalk(*init_task_, dirpath, kNoHooks | kFollowFinal, &nd) != 0 || !nd.inode ||
      !nd.inode->IsDir()) {
    return nullptr;
  }
  auto dir = nd.inode;
  if (dir->entries.count(name) != 0) {
    return nullptr;
  }
  auto inode = vfs_.Sb(dir->dev).Alloc(InodeType::kRegular, mode, uid, gid,
                                       labels_.Intern(label));
  inode->nlink = 1;
  inode->data = std::move(contents);
  dir->entries[name] = inode->ino;
  return inode;
}

std::shared_ptr<Inode> Kernel::MkSymlinkAt(const std::string& path, const std::string& target,
                                           Uid uid, Gid gid, std::string_view label) {
  auto [dirpath, name] = SplitPath(path);
  Nameidata nd;
  if (PathWalk(*init_task_, dirpath, kNoHooks | kFollowFinal, &nd) != 0 || !nd.inode ||
      !nd.inode->IsDir()) {
    return nullptr;
  }
  auto dir = nd.inode;
  if (dir->entries.count(name) != 0) {
    return nullptr;
  }
  auto inode = vfs_.Sb(dir->dev).Alloc(InodeType::kSymlink, 0777, uid, gid,
                                       labels_.Intern(label));
  inode->nlink = 1;
  inode->symlink_target = target;
  dir->entries[name] = inode->ino;
  return inode;
}

std::shared_ptr<Inode> Kernel::LookupNoHooks(const std::string& path) {
  Nameidata nd;
  if (PathWalk(*init_task_, path, kNoHooks | kFollowFinal, &nd) != 0) {
    return nullptr;
  }
  return nd.inode;
}

// --- authorization -----------------------------------------------------------

int64_t Kernel::Authorize(AccessRequest& req) {
  ++authorize_calls_;
  for (auto& module : modules_) {
    int64_t rv = module->Authorize(req);
    if (rv != 0) {
      ++denial_count_;
      return rv;
    }
  }
  return 0;
}

int64_t Kernel::HookInode(Task& task, Op op, Inode& inode, std::string_view name,
                          Inode* link_target) {
  AccessRequest req;
  req.task = &task;
  req.op = op;
  req.inode = &inode;
  req.id = inode.id();
  req.name = name;
  req.link_target = link_target;
  req.syscall_nr = task.syscall_nr;
  req.args = task.syscall_args;
  return Authorize(req);
}

int64_t Kernel::HookSyscallBegin(Task& task) {
  AccessRequest req;
  req.task = &task;
  req.op = Op::kSyscallBegin;
  req.syscall_nr = task.syscall_nr;
  req.args = task.syscall_args;
  return Authorize(req);
}

bool Kernel::DacPermitted(const Cred& cred, const Inode& inode, uint32_t access_bits) const {
  if (cred.IsRoot()) {
    return true;
  }
  uint32_t granted;
  if (cred.euid == inode.uid) {
    granted = (inode.mode >> 6) & 7;
  } else if (cred.egid == inode.gid) {
    granted = (inode.mode >> 3) & 7;
  } else {
    granted = inode.mode & 7;
  }
  return (granted & access_bits) == access_bits;
}

bool Kernel::DacMayDelete(const Cred& cred, const Inode& dir, const Inode& victim) const {
  if (cred.IsRoot()) {
    return true;
  }
  if (!DacPermitted(cred, dir, AccessBit(Access::kWrite) | AccessBit(Access::kExec))) {
    return false;
  }
  if (dir.IsSticky() && cred.euid != victim.uid && cred.euid != dir.uid) {
    return false;
  }
  return true;
}

void Kernel::FillStat(const Inode& inode, StatBuf* st) const {
  st->dev = inode.dev;
  st->ino = inode.ino;
  st->type = inode.type;
  st->mode = inode.mode;
  st->uid = inode.uid;
  st->gid = inode.gid;
  st->size = inode.IsSymlink() ? inode.symlink_target.size() : inode.data.size();
  st->nlink = inode.nlink;
  st->sid = inode.sid;
}

Addr Kernel::AslrStackBase() {
  return 0x7ffc00000000ULL + (rng_.Below(1u << 20) << 12);
}

Addr Kernel::AslrMapBase() {
  return 0x7f0000000000ULL + (rng_.Below(1u << 24) << 12);
}

// --- SyscallScope ------------------------------------------------------------

SyscallScope::SyscallScope(Kernel& kernel, Task& task, SyscallNr nr, std::array<int64_t, 4> args)
    : kernel_(kernel), task_(task), prev_nr_(task.syscall_nr), prev_args_(task.syscall_args) {
  if (kernel_.syscall_cost_ns_ > 0) {
    // Calibrated kernel-entry cost (benchmarks only; see kernel.h).
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::nanoseconds(kernel_.syscall_cost_ns_);
    while (std::chrono::steady_clock::now() < deadline) {
    }
  }
  task_.syscall_nr = nr;
  task_.syscall_args = args;
  ++task_.syscall_depth;
  ++task_.syscall_count;
  ++kernel_.tick_;
  for (auto& m : kernel_.modules_) {
    m->OnSyscallEnter(task_);
  }
  denial_ = kernel_.HookSyscallBegin(task_);
}

SyscallScope::~SyscallScope() {
  for (auto& m : kernel_.modules_) {
    m->OnSyscallExit(task_);
  }
  --task_.syscall_depth;
  task_.syscall_nr = prev_nr_;
  task_.syscall_args = prev_args_;
}

// --- trivial syscalls ---------------------------------------------------------

int64_t Kernel::SysNull(Task& task) {
  SyscallScope scope(*this, task, SyscallNr::kNull);
  if (scope.denied()) {
    return scope.error();
  }
  return 0;
}

int64_t Kernel::SysGetpid(Task& task) {
  SyscallScope scope(*this, task, SyscallNr::kGetpid);
  if (scope.denied()) {
    return scope.error();
  }
  return task.pid;
}

int64_t Kernel::SysUmask(Task& task, FileMode mask) {
  SyscallScope scope(*this, task, SyscallNr::kUmask);
  if (scope.denied()) {
    return scope.error();
  }
  FileMode old = task.umask;
  task.umask = mask & 0777;
  return old;
}

// --- stat family ---------------------------------------------------------------

int64_t Kernel::SysStat(Task& task, const std::string& path, StatBuf* st) {
  SyscallScope scope(*this, task, SyscallNr::kStat);
  if (scope.denied()) {
    return scope.error();
  }
  Nameidata nd;
  if (int64_t rv = PathWalk(task, path, kFollowFinal, &nd); rv != 0) {
    return rv;
  }
  if (int64_t rv = HookInode(task, Op::kFileGetattr, *nd.inode, path); rv != 0) {
    return rv;
  }
  FillStat(*nd.inode, st);
  return 0;
}

int64_t Kernel::SysLstat(Task& task, const std::string& path, StatBuf* st) {
  SyscallScope scope(*this, task, SyscallNr::kLstat);
  if (scope.denied()) {
    return scope.error();
  }
  Nameidata nd;
  if (int64_t rv = PathWalk(task, path, 0, &nd); rv != 0) {
    return rv;
  }
  if (int64_t rv = HookInode(task, Op::kFileGetattr, *nd.inode, path); rv != 0) {
    return rv;
  }
  FillStat(*nd.inode, st);
  return 0;
}

int64_t Kernel::SysFstat(Task& task, int fd, StatBuf* st) {
  SyscallScope scope(*this, task, SyscallNr::kFstat, {fd});
  if (scope.denied()) {
    return scope.error();
  }
  auto file = task.fds.Get(fd);
  if (!file) {
    return SysError(Err::kBadF);
  }
  if (int64_t rv = HookInode(task, Op::kFileGetattr, *file->inode, ""); rv != 0) {
    return rv;
  }
  FillStat(*file->inode, st);
  return 0;
}

int64_t Kernel::SysAccess(Task& task, const std::string& path, uint32_t bits) {
  SyscallScope scope(*this, task, SyscallNr::kAccess);
  if (scope.denied()) {
    return scope.error();
  }
  Nameidata nd;
  if (int64_t rv = PathWalk(task, path, kFollowFinal, &nd); rv != 0) {
    return rv;
  }
  // access(2) checks with the *real* uid/gid: the historically racy API.
  Cred real = task.cred;
  real.euid = real.uid;
  real.egid = real.gid;
  if (!DacPermitted(real, *nd.inode, bits)) {
    return SysError(Err::kAcces);
  }
  return 0;
}

}  // namespace pf::sim
