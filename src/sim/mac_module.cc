#include "src/sim/mac_module.h"

#include "src/sim/error.h"
#include "src/sim/task.h"

namespace pf::sim {

uint32_t MacModule::PermsFor(Op op) {
  switch (op) {
    case Op::kFileOpen:
    case Op::kFileRead:
    case Op::kFileGetattr:
    case Op::kDirSearch:
    case Op::kLnkFileRead:
      return kMacRead;
    case Op::kFileWrite:
    case Op::kFileSetattr:
    case Op::kFileUnlink:
    case Op::kDirRemoveName:
      return kMacWrite;
    case Op::kDirAddName:
    case Op::kFileCreate:
      return kMacCreate;
    case Op::kFileExec:
    case Op::kFileMmap:
      return kMacExec;
    case Op::kSocketBind:
      return kMacBind;
    case Op::kSocketConnect:
      return kMacConnect;
    case Op::kSocketSetattr:
      return kMacWrite;
    default:
      return 0;
  }
}

int64_t MacModule::Authorize(AccessRequest& req) {
  if (!policy_->enforcing() || req.inode == nullptr || req.task == nullptr) {
    return 0;
  }
  uint32_t perms = PermsFor(req.op);
  if (perms == 0) {
    return 0;
  }
  if (!policy_->Check(req.task->cred.sid, req.inode->sid, perms)) {
    return SysError(Err::kAcces);
  }
  return 0;
}

}  // namespace pf::sim
