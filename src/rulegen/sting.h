// A STING-like runtime vulnerability tester (paper §6.3.1: "our testing
// tool logs the process entrypoint and the unsafe resource that led to the
// attack" — Vijayakumar et al., USENIX Security 2012).
//
// Workflow:
//   1. MONITOR: run the workload under a log-everything rule and collect
//      name resolutions that pass through adversary-writable territory
//      (candidate attack surfaces).
//   2. TEST: for each candidate, rebuild the world, actively plant an
//      adversary artifact (a symbolic link to a canary file) at the
//      candidate name, re-run the workload, and observe whether the victim
//      actually accessed the canary.
//   3. REPORT: each confirmed access yields a VulnRecord from which
//      GenerateRules() produces a blocking rule — by construction free of
//      false positives (the entrypoint/unsafe-resource pair is exploitable).
#ifndef SRC_RULEGEN_STING_H_
#define SRC_RULEGEN_STING_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/engine.h"
#include "src/rulegen/vuln.h"
#include "src/sim/sched.h"

namespace pf::rulegen {

// One freshly built world per trial (monitoring and each test run happen in
// isolation so plants cannot contaminate each other).
struct StingWorld {
  std::unique_ptr<sim::Kernel> kernel;
  core::Engine* engine = nullptr;  // owned by the kernel
  std::unique_ptr<sim::Scheduler> sched;
};

using WorldFactory = std::function<StingWorld()>;
// Runs the victim workload to completion inside the world.
using Workload = std::function<void(StingWorld&)>;

// A name resolution worth attacking.
struct StingCandidate {
  std::string program;       // image containing the entrypoint
  uint64_t entrypoint = 0;
  std::string path;          // the name the victim used
  sim::Op op = sim::Op::kFileOpen;
  // Whether the monitored (legitimate) access was to an adversary-writable
  // resource. Decides the generated defense: an entrypoint that legitimately
  // reads low-integrity files gets the link-following rules (it must keep
  // reading them); one that expects high-integrity resources gets a T1
  // SYSHIGH restriction.
  bool expects_low_integrity = false;
};

struct StingFinding {
  StingCandidate candidate;
  bool exploitable = false;
  VulnRecord record;  // valid when exploitable
};

class Sting {
 public:
  Sting(WorldFactory factory, Workload workload)
      : factory_(std::move(factory)), workload_(std::move(workload)) {}

  // Phase 1: finds candidate attack surfaces.
  std::vector<StingCandidate> Monitor();

  // Phase 2+3: tests every candidate; returns all findings (exploitable or
  // not), confirmed ones first.
  std::vector<StingFinding> TestCandidates(const std::vector<StingCandidate>& candidates);

  // Convenience: Monitor + TestCandidates + GenerateRules for confirmed
  // findings.
  std::vector<std::string> GenerateBlockingRules();

  // Path of the canary planted during tests.
  static constexpr const char* kCanaryPath = "/etc/sting_canary";

 private:
  // True if creating/replacing `path` is within an adversary's power
  // (its parent directory is adversary-writable under the MAC policy).
  static bool AdversaryCanPlant(StingWorld& world, const std::string& path);

  WorldFactory factory_;
  Workload workload_;
};

}  // namespace pf::rulegen

#endif  // SRC_RULEGEN_STING_H_
