#include "src/rulegen/synthetic.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "src/sim/rng.h"

namespace pf::rulegen {

using sim::SplitMix64;

namespace {

// Piecewise-empirical CDF of class-switch points for "both" entrypoints,
// calibrated to the paper's false-positive ladder (Table 8): most dual
// entrypoints reveal both classes quickly; a long thin tail stretches out
// to invocation 1149.
constexpr struct {
  uint64_t upto;
  double cdf;
} kSwitchCdf[] = {
    {5, 0.55}, {10, 0.70}, {50, 0.947}, {100, 0.966}, {500, 0.992},
    {1000, 0.998}, {1149, 1.0},
};

uint64_t SampleSwitch(SplitMix64& rng) {
  double u = rng.NextDouble();
  uint64_t lo = 2;
  double cdf_lo = 0.0;
  for (const auto& seg : kSwitchCdf) {
    if (u <= seg.cdf) {
      double f = (u - cdf_lo) / (seg.cdf - cdf_lo);
      // Interpolate in log space within the segment.
      double lg = std::log(static_cast<double>(lo)) +
                  f * (std::log(static_cast<double>(seg.upto)) -
                       std::log(static_cast<double>(lo)));
      return std::max<uint64_t>(2, static_cast<uint64_t>(std::llround(std::exp(lg))));
    }
    lo = seg.upto;
    cdf_lo = seg.cdf;
  }
  return 1149;
}

// Truncated Pareto invocation counts (heavy-tailed, like real desktop
// entrypoint usage).
uint64_t SampleInvocations(SplitMix64& rng, double alpha, uint64_t max) {
  double u = rng.NextDouble();
  if (u <= 0.0) {
    u = 1e-12;
  }
  double n = std::pow(1.0 - u, -1.0 / alpha);
  return std::min<uint64_t>(max, std::max<uint64_t>(1, static_cast<uint64_t>(n)));
}

}  // namespace

SyntheticTrace GenerateDeploymentTrace(const SyntheticTraceConfig& config) {
  SplitMix64 rng(config.seed);
  SyntheticTrace trace;
  trace.entrypoints.reserve(static_cast<size_t>(config.entrypoints));

  int n_both = static_cast<int>(std::llround(config.both_fraction * config.entrypoints));
  int n_low = static_cast<int>(std::llround(config.low_fraction * config.entrypoints));
  bool forced_max_switch = false;

  for (int i = 0; i < config.entrypoints; ++i) {
    SyntheticEpt ept;
    if (i < n_both) {
      ept.truth = SyntheticEpt::Truth::kBoth;
      ept.majority_high = rng.NextDouble() < config.both_majority_high;
      ept.switch_at = SampleSwitch(rng);
      if (!forced_max_switch) {
        // The paper's trace had its latest switch at exactly 1149.
        ept.switch_at = config.max_switch;
        forced_max_switch = true;
      }
      // Dual entrypoints are heavily exercised (libraries, shells): they
      // live long enough to actually reveal their second class.
      ept.invocations = std::min<uint64_t>(
          config.max_invocations * 2, ept.switch_at * rng.Range(2, 12));
      ept.in_library = rng.NextDouble() < 18.0 / 28.0;
    } else if (i < n_both + n_low) {
      ept.truth = SyntheticEpt::Truth::kLow;
      ept.invocations =
          SampleInvocations(rng, /*alpha=*/0.62, config.max_invocations);
    } else {
      ept.truth = SyntheticEpt::Truth::kHigh;
      ept.invocations =
          SampleInvocations(rng, /*alpha=*/0.62, config.max_invocations);
    }
    trace.total_accesses += ept.invocations;
    trace.entrypoints.push_back(ept);
  }
  return trace;
}

std::vector<Table8Row> AnalyzeThresholds(const SyntheticTrace& trace,
                                         const std::vector<uint64_t>& thresholds) {
  std::vector<Table8Row> rows;
  rows.reserve(thresholds.size());
  for (uint64_t threshold : thresholds) {
    const uint64_t m = std::max<uint64_t>(threshold, 1);
    Table8Row row;
    row.threshold = threshold;
    for (const SyntheticEpt& ept : trace.entrypoints) {
      // Classification over the first min(m, invocations) accesses.
      bool prefix_both = ept.truth == SyntheticEpt::Truth::kBoth &&
                         ept.switch_at <= std::min(m, ept.invocations);
      if (prefix_both) {
        ++row.both;
      } else if (ept.truth == SyntheticEpt::Truth::kLow ||
                 (ept.truth == SyntheticEpt::Truth::kBoth && !ept.majority_high)) {
        ++row.low_only;
      } else {
        ++row.high_only;
      }
      // Rule suggestion: enough invocations and not (yet) classified both.
      if (ept.invocations >= m && !prefix_both) {
        ++row.rules_produced;
        if (ept.truth == SyntheticEpt::Truth::kBoth) {
          ++row.false_positives;  // ground truth says this rule will misfire
        }
      }
    }
    rows.push_back(row);
  }
  return rows;
}

ConsistencyReport AnalyzeLaunchConsistency(uint64_t seed, int programs) {
  SplitMix64 rng(seed);
  ConsistencyReport report;
  report.programs = programs;
  for (int i = 0; i < programs; ++i) {
    // Each program is launched several times; daemons and package tools are
    // started identically, interactive/user programs vary their command
    // lines, environment, or user-edited configuration files
    // (paper: 232 of 318 consistent).
    int launches = static_cast<int>(rng.Range(2, 30));
    bool varies_argv = rng.NextDouble() < 0.17;
    bool varies_env = rng.NextDouble() < 0.12;
    bool modified_config = rng.NextDouble() < 0.06;
    bool consistent = true;
    std::string base_argv = "argv" + std::to_string(i);
    std::string base_env = "env" + std::to_string(i);
    std::string prev_argv = base_argv;
    std::string prev_env = base_env;
    for (int l = 1; l < launches && consistent; ++l) {
      std::string argv = varies_argv && rng.Chance(0.5)
                             ? base_argv + "-" + std::to_string(l)
                             : base_argv;
      std::string env =
          varies_env && rng.Chance(0.5) ? base_env + "-" + std::to_string(l) : base_env;
      if (argv != prev_argv || env != prev_env || modified_config) {
        consistent = false;
      }
    }
    if (consistent) {
      ++report.consistent;
    }
  }
  return report;
}

}  // namespace pf::rulegen
