#include "src/rulegen/classify.h"

#include <sstream>

namespace pf::rulegen {

void EntrypointClassifier::Add(const core::LogRecord& record) {
  if (!record.entry_valid) {
    return;
  }
  EptKey key{record.program, record.entrypoint};
  EptInfo& info = table_[key];
  ++info.invocations;
  // Integrity view (footnote 2 of the paper): a resource writable by an
  // adversary is low-integrity.
  if (record.adversary_writable) {
    info.saw_low = true;
    info.low_labels.insert(record.object_label);
  } else {
    info.saw_high = true;
    info.high_labels.insert(record.object_label);
  }
  info.ops.insert(std::string(sim::OpName(record.op)));
}

void EntrypointClassifier::AddAll(const std::vector<core::LogRecord>& records) {
  for (const auto& r : records) {
    Add(r);
  }
}

size_t EntrypointClassifier::CountClass(EptClass c) const {
  size_t n = 0;
  for (const auto& [key, info] : table_) {
    if (info.Classification() == c) {
      ++n;
    }
  }
  return n;
}

std::vector<std::string> EntrypointClassifier::SuggestRules(uint64_t threshold) const {
  std::vector<std::string> rules;
  for (const auto& [key, info] : table_) {
    if (info.invocations < threshold || info.Classification() == EptClass::kBoth) {
      continue;
    }
    const std::set<std::string>& labels =
        info.Classification() == EptClass::kHigh ? info.high_labels : info.low_labels;
    if (labels.empty() || labels.count("") != 0) {
      continue;
    }
    std::ostringstream set;
    set << "{";
    bool first = true;
    for (const std::string& label : labels) {
      if (!first) {
        set << "|";
      }
      set << label;
      first = false;
    }
    set << "}";
    for (const std::string& op : info.ops) {
      std::ostringstream rule;
      rule << "pftables -I input -i 0x" << std::hex << key.entrypoint << std::dec
           << " -p " << key.program << " -d ~" << set.str() << " -o " << op
           << " -j DROP";
      rules.push_back(rule.str());
    }
  }
  return rules;
}

}  // namespace pf::rulegen
