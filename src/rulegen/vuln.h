// Rule generation from known vulnerabilities (paper §6.3.1).
//
// A vulnerability-testing tool (STING in the paper) logs the process
// entrypoint and the unsafe resource of a confirmed attack. Because that
// (entrypoint, unsafe resource) pair is known-exploitable, the generated
// rule cannot introduce false positives; it is generalized to deny *all*
// unsafe resources of the attack's class at that entrypoint, using the
// attack-specific templates T1/T2.
#ifndef SRC_RULEGEN_VULN_H_
#define SRC_RULEGEN_VULN_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pf::rulegen {

enum class VulnType {
  kUntrustedSearchPath,   // victim expected high-integrity, got adversary file
  kUntrustedLibrary,
  kPhpInclusion,
  kDirectoryTraversal,    // victim expected adversary-accessible, got high
  kLinkFollowing,
  kFileSquat,
  kTocttou,               // check/use pair
  kSignalRace,
};

struct VulnRecord {
  VulnType type = VulnType::kUntrustedSearchPath;
  std::string program;      // victim binary
  uint64_t entrypoint = 0;  // the "use" call site
  std::string op;           // operation at the use site (e.g. FILE_OPEN)

  // TOCTTOU only: the corresponding check site.
  uint64_t check_entrypoint = 0;
  std::string check_op;

  // Optional: labels of the legitimate resources, when known (tightens the
  // rule beyond the SYSHIGH generalization).
  std::vector<std::string> trusted_labels;
};

// Produces the pftables rules that block the vulnerability.
std::vector<std::string> GenerateRules(const VulnRecord& record);

}  // namespace pf::rulegen

#endif  // SRC_RULEGEN_VULN_H_
