// Entrypoint classification from runtime traces (paper §6.3.1).
//
// Every LOG record carries the entrypoint (program + relative PC) and the
// adversary accessibility of the resource. Entrypoints are classified as
// high (only adversary-inaccessible resources observed), low (only
// adversary-accessible), or both. Invariant rules are suggested for
// entrypoints classified high or low and invoked at least a threshold
// number of times; the threshold trades coverage against false positives.
#ifndef SRC_RULEGEN_CLASSIFY_H_
#define SRC_RULEGEN_CLASSIFY_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/core/log.h"

namespace pf::rulegen {

enum class EptClass { kHigh, kLow, kBoth };

struct EptKey {
  std::string program;
  uint64_t entrypoint = 0;
  bool operator<(const EptKey& o) const {
    return program != o.program ? program < o.program : entrypoint < o.entrypoint;
  }
};

struct EptInfo {
  uint64_t invocations = 0;
  bool saw_high = false;
  bool saw_low = false;
  // Observed object labels and operations, per integrity class.
  std::set<std::string> high_labels;
  std::set<std::string> low_labels;
  std::set<std::string> ops;

  EptClass Classification() const {
    if (saw_high && saw_low) {
      return EptClass::kBoth;
    }
    return saw_low ? EptClass::kLow : EptClass::kHigh;
  }
};

class EntrypointClassifier {
 public:
  // Ingests one LOG record (entries without a valid entrypoint are skipped).
  void Add(const core::LogRecord& record);
  void AddAll(const std::vector<core::LogRecord>& records);

  const std::map<EptKey, EptInfo>& entrypoints() const { return table_; }

  // Counts by classification.
  size_t CountClass(EptClass c) const;

  // Suggests T1-style invariant rules for entrypoints invoked at least
  // `threshold` times and classified high or low: each suggested rule
  // restricts the entrypoint's operation to the set of labels it was
  // observed to access.
  std::vector<std::string> SuggestRules(uint64_t threshold) const;

 private:
  std::map<EptKey, EptInfo> table_;
};

}  // namespace pf::rulegen

#endif  // SRC_RULEGEN_CLASSIFY_H_
