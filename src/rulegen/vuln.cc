#include "src/rulegen/vuln.h"

#include <sstream>

#include "src/apps/rule_library.h"

namespace pf::rulegen {

namespace {

std::string LabelSetOf(const VulnRecord& record) {
  if (record.trusted_labels.empty()) {
    return "{SYSHIGH}";
  }
  std::ostringstream oss;
  oss << "{";
  for (size_t i = 0; i < record.trusted_labels.size(); ++i) {
    if (i > 0) {
      oss << "|";
    }
    oss << record.trusted_labels[i];
  }
  oss << "}";
  return oss.str();
}

}  // namespace

std::vector<std::string> GenerateRules(const VulnRecord& record) {
  using apps::RuleLibrary;
  switch (record.type) {
    case VulnType::kUntrustedSearchPath:
    case VulnType::kUntrustedLibrary:
    case VulnType::kPhpInclusion:
      // Integrity attacks: the entrypoint must only see trusted resources.
      return {RuleLibrary::TemplateT1(record.program, record.entrypoint, LabelSetOf(record),
                                      record.op.empty() ? "FILE_OPEN" : record.op)};
    case VulnType::kDirectoryTraversal: {
      // The entrypoint serves adversary-accessible content; deny escapes
      // into the TCB: drop when the object *is* SYSHIGH.
      std::ostringstream oss;
      oss << "pftables -I input -i 0x" << std::hex << record.entrypoint << std::dec
          << " -p " << record.program << " -d {SYSHIGH} -o "
          << (record.op.empty() ? "FILE_OPEN" : record.op) << " -j DROP";
      return {oss.str()};
    }
    case VulnType::kLinkFollowing:
      return RuleLibrary::SafeOpenRules();
    case VulnType::kFileSquat: {
      // Squats plant adversary resources where the victim creates/opens:
      // same shape as untrusted search path.
      return {RuleLibrary::TemplateT1(record.program, record.entrypoint, "{SYSHIGH}",
                                      record.op.empty() ? "FILE_CREATE" : record.op)};
    }
    case VulnType::kTocttou: {
      std::ostringstream key;
      key << "0x" << std::hex << record.entrypoint;
      return RuleLibrary::TemplateT2(
          record.program, record.check_entrypoint, record.entrypoint,
          record.check_op.empty() ? "FILE_GETATTR" : record.check_op,
          record.op.empty() ? "FILE_OPEN" : record.op, key.str());
    }
    case VulnType::kSignalRace:
      return RuleLibrary::SignalRaceRules();
  }
  return {};
}

}  // namespace pf::rulegen
