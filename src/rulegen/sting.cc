#include "src/rulegen/sting.h"

#include <algorithm>
#include <set>

#include "src/core/pftables.h"
#include "src/sim/sysimage.h"

namespace pf::rulegen {

namespace {

std::string DirnameOf(const std::string& path) {
  auto slash = path.rfind('/');
  if (slash == std::string::npos || slash == 0) {
    return "/";
  }
  return path.substr(0, slash);
}

bool IsInterestingOp(sim::Op op) {
  switch (op) {
    case sim::Op::kFileOpen:
    case sim::Op::kFileCreate:
    case sim::Op::kFileGetattr:
    case sim::Op::kSocketConnect:
      return true;
    default:
      return false;
  }
}

}  // namespace

bool Sting::AdversaryCanPlant(StingWorld& world, const std::string& path) {
  auto dir = world.kernel->LookupNoHooks(DirnameOf(path));
  if (!dir) {
    return false;
  }
  return world.kernel->policy().AdversaryWritable(dir->sid);
}

std::vector<StingCandidate> Sting::Monitor() {
  StingWorld world = factory_();
  core::Pftables pft(world.engine);
  // Log everything that binds a name to a resource.
  core::Status s = pft.Exec("pftables -I input -j LOG --prefix sting-monitor");
  if (!s.ok()) {
    return {};
  }
  workload_(world);

  std::vector<StingCandidate> out;
  std::set<std::string> seen;
  for (const core::LogRecord& rec : world.engine->log().records()) {
    if (!rec.entry_valid || !IsInterestingOp(rec.op)) {
      continue;
    }
    // Names are recorded for pathname-driven accesses only.
    if (rec.name.empty() || rec.name[0] != '/') {
      continue;
    }
    StingCandidate cand;
    cand.program = rec.program;
    cand.entrypoint = rec.entrypoint;
    cand.path = rec.name;
    cand.op = rec.op;
    cand.expects_low_integrity = rec.adversary_writable;
    // Attack surface: an adversary can interpose on this binding.
    if (!AdversaryCanPlant(world, cand.path)) {
      continue;
    }
    std::string key = cand.program + ":" + std::to_string(cand.entrypoint) + ":" +
                      cand.path + ":" + std::string(sim::OpName(cand.op));
    if (seen.insert(key).second) {
      out.push_back(std::move(cand));
    }
  }
  return out;
}

std::vector<StingFinding> Sting::TestCandidates(
    const std::vector<StingCandidate>& candidates) {
  std::vector<StingFinding> findings;
  for (const StingCandidate& cand : candidates) {
    StingFinding finding;
    finding.candidate = cand;

    StingWorld world = factory_();
    // Plant the attack: a canary the adversary could never touch directly,
    // reachable only by tricking the victim.
    auto canary = world.kernel->MkFileAt(kCanaryPath, "sting-canary", 0666, 0, 0,
                                         "shadow_t");
    if (!canary) {
      canary = world.kernel->LookupNoHooks(kCanaryPath);
    }
    // Replace whatever is at the candidate path with a symlink to the
    // canary (the adversary's unlink+symlink).
    if (world.kernel->LookupNoHooks(cand.path) != nullptr) {
      // Simulate the adversary's unlink via a throwaway process so DAC
      // (sticky bits etc.) is honored.
      sim::SpawnOpts mopts;
      mopts.name = "sting-adversary";
      mopts.cred.uid = mopts.cred.euid = sim::kMalloryUid;
      mopts.cred.gid = mopts.cred.egid = sim::kMalloryUid;
      mopts.cred.sid = world.kernel->labels().Intern("user_t");
      std::string path = cand.path;
      sim::Pid adv = world.sched->Spawn(mopts, [path](sim::Proc& p) {
        p.Unlink(path);
        p.Symlink(Sting::kCanaryPath, path);
      });
      world.sched->RunUntilExit(adv);
    } else {
      world.kernel->MkSymlinkAt(cand.path, kCanaryPath, sim::kMalloryUid,
                                sim::kMalloryUid, "tmp_t");
    }
    // The plant must have taken effect (DAC, e.g. the sticky bit, may have
    // stopped the adversary — then this surface is not attackable). Note
    // LookupNoHooks follows links, so inspect the raw directory entry.
    bool plant_ok = false;
    if (auto dir = world.kernel->LookupNoHooks(DirnameOf(cand.path))) {
      std::string last = cand.path.substr(cand.path.rfind('/') + 1);
      if (auto it = dir->entries.find(last); it != dir->entries.end()) {
        auto raw = world.kernel->vfs().Sb(dir->dev).Get(it->second);
        plant_ok = raw && raw->IsSymlink();
      }
    }
    if (!plant_ok) {
      findings.push_back(std::move(finding));
      continue;
    }

    // Watch for the victim reaching the canary.
    core::Pftables pft(world.engine);
    pft.Exec("pftables -I input -j LOG --prefix sting-test");
    workload_(world);

    sim::FileId canary_id = world.kernel->LookupNoHooks(kCanaryPath)->id();
    for (const core::LogRecord& rec : world.engine->log().records()) {
      if (rec.object == canary_id && rec.entry_valid &&
          rec.entrypoint == cand.entrypoint && rec.program == cand.program) {
        finding.exploitable = true;
        finding.record.type = cand.op == sim::Op::kFileCreate ? VulnType::kFileSquat
                              : cand.expects_low_integrity    ? VulnType::kLinkFollowing
                                                   : VulnType::kUntrustedSearchPath;
        finding.record.program = cand.program;
        finding.record.entrypoint = cand.entrypoint;
        finding.record.op = std::string(sim::OpName(cand.op));
        break;
      }
    }
    findings.push_back(std::move(finding));
  }
  // Confirmed findings first.
  std::stable_sort(findings.begin(), findings.end(),
                   [](const StingFinding& a, const StingFinding& b) {
                     return a.exploitable > b.exploitable;
                   });
  return findings;
}

std::vector<std::string> Sting::GenerateBlockingRules() {
  std::vector<std::string> rules;
  std::set<std::string> dedup;
  for (const StingFinding& finding : TestCandidates(Monitor())) {
    if (!finding.exploitable) {
      continue;
    }
    for (std::string& rule : GenerateRules(finding.record)) {
      if (dedup.insert(rule).second) {
        rules.push_back(std::move(rule));
      }
    }
  }
  return rules;
}

}  // namespace pf::rulegen
