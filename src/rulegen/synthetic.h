// Synthetic deployment trace (the two-week desktop trace of paper §6.3.1)
// and the Table 8 threshold analysis.
//
// The paper's trace is proprietary (an instrumented Ubuntu 10.04 desktop);
// we generate a statistically matched stand-in: 5,234 entrypoints and
// ~410,000 access records, Zipf-distributed invocation counts, a small
// population of genuinely-dual ("both") entrypoints that reveal their
// second class only after some number of invocations (library entrypoints
// used from multiple environments, name-from-input programs like nautilus),
// with the latest reveal around invocation 1149 — the paper's empirical
// zero-false-positive threshold. Ground truth is known by construction, so
// false positives are measured exactly.
#ifndef SRC_RULEGEN_SYNTHETIC_H_
#define SRC_RULEGEN_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pf::rulegen {

struct SyntheticTraceConfig {
  uint64_t seed = 0x70ce;
  int entrypoints = 5234;
  // Fractions of ground-truth classes (defaults calibrated to Table 8's
  // converged row: 4229 high / 480 low / 525 both).
  double low_fraction = 480.0 / 5234.0;
  double both_fraction = 525.0 / 5234.0;
  // Among "both" entrypoints, fraction whose majority class is high.
  double both_majority_high = 207.0 / 525.0;
  // Zipf-ish invocation-count distribution parameters.
  double zipf_exponent = 1.1;
  uint64_t max_invocations = 12000;
  // The latest observed class switch (paper: 1149).
  uint64_t max_switch = 1149;
};

// One synthetic entrypoint with ground truth.
struct SyntheticEpt {
  enum class Truth { kHigh, kLow, kBoth };
  Truth truth = Truth::kHigh;
  bool majority_high = true;   // for kBoth: which class dominates the prefix
  uint64_t invocations = 0;    // total invocations in the trace
  uint64_t switch_at = 0;      // for kBoth: invocation index revealing class 2
  bool in_library = false;     // cause analysis (paper: 18 of 28 in libraries)
};

struct SyntheticTrace {
  std::vector<SyntheticEpt> entrypoints;
  uint64_t total_accesses = 0;
};

SyntheticTrace GenerateDeploymentTrace(const SyntheticTraceConfig& config = {});

// One row of Table 8.
struct Table8Row {
  uint64_t threshold = 0;
  uint64_t high_only = 0;
  uint64_t low_only = 0;
  uint64_t both = 0;
  uint64_t rules_produced = 0;
  uint64_t false_positives = 0;
};

// Classifies each entrypoint on its first max(threshold, 1) invocations and
// produces rules for entrypoints with at least that many invocations that
// are not yet classified "both" (paper §6.3.1). A produced rule is a false
// positive when the entrypoint's ground truth is "both".
std::vector<Table8Row> AnalyzeThresholds(const SyntheticTrace& trace,
                                         const std::vector<uint64_t>& thresholds);

// §6.3.2: launch-environment consistency. Synthesizes launch records for
// `programs` distinct programs and reports how many were launched with an
// identical environment (command line, env vars, unmodified package files)
// every time — the population for which distributor rules are valid.
struct ConsistencyReport {
  int programs = 0;
  int consistent = 0;
};

ConsistencyReport AnalyzeLaunchConsistency(uint64_t seed = 0x1a47c4, int programs = 318);

}  // namespace pf::rulegen

#endif  // SRC_RULEGEN_SYNTHETIC_H_
