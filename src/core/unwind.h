// Kernel-side unwinding of (untrusted) user stacks and interpreter frame
// lists — the entrypoint context module's engine room (paper Section 4.4).
//
// Binary stacks are unwound by walking the frame-pointer chain through the
// task's user memory with validated reads. When the chain is broken (frames
// from images built without frame pointers), the unwinder falls back to
//   (a) unwind-table information, modelled by the task's ground-truth frame
//       list but *cross-validated against user memory* — a process that has
//       scribbled over its frame records is detected and unwinding aborts; or
//   (b) a GDB-style prologue/stack-scan heuristic that searches upward for
//       the next plausible frame record.
// Both a frame-count limit and a monotonicity requirement on the chain bound
// the work a malicious process can induce (no DoS through unwinding).
#ifndef SRC_CORE_UNWIND_H_
#define SRC_CORE_UNWIND_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/task.h"

namespace pf::core {

inline constexpr int kMaxUnwindFrames = 64;
inline constexpr int kMaxInterpFrames = 128;

enum class UnwindStatus {
  kOk,         // walked to the outermost frame
  kTruncated,  // hit the frame limit or lost the chain; prefix is valid
  kAborted,    // inconsistent/malicious state; result must not be trusted
};

// One unwound binary frame.
struct BinFrame {
  sim::Addr pc = 0;
  sim::FileId image;        // identity of the mapped binary
  std::string image_path;   // pathname of the mapping
  uint64_t offset = 0;      // pc - mapping base (what rules match on)
};

struct UnwindResult {
  UnwindStatus status = UnwindStatus::kAborted;
  std::vector<BinFrame> frames;  // innermost first

  bool usable() const { return status != UnwindStatus::kAborted && !frames.empty(); }
};

// One unwound interpreter frame.
struct InterpRec {
  sim::InterpLang lang = sim::InterpLang::kNone;
  uint32_t script_id = 0;
  uint32_t line = 0;
  std::string script_path;  // resolved from the task's script table
};

struct InterpUnwindResult {
  UnwindStatus status = UnwindStatus::kAborted;
  std::vector<InterpRec> frames;  // innermost first
};

// Unwinds the task's user stack. Never throws; never reads outside the
// task's user region.
UnwindResult UnwindUserStack(const sim::Task& task);

// Walks the interpreter frame list (arena nodes) if the task runs an
// interpreter; empty result with kOk if it does not.
InterpUnwindResult UnwindInterpStack(const sim::Task& task);

}  // namespace pf::core

#endif  // SRC_CORE_UNWIND_H_
