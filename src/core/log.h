// LOG target sink: structured records of resource accesses in JSON-able
// form (paper §5.2: "The LOG target module logs a variety of information
// about the current resource access in JSON format"). Rule generation
// (src/rulegen) consumes these records.
#ifndef SRC_CORE_LOG_H_
#define SRC_CORE_LOG_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/lsm.h"

namespace pf::core {

struct LogRecord {
  uint64_t tick = 0;
  sim::Pid pid = sim::kInvalidPid;
  std::string comm;
  std::string exe;
  sim::Op op = sim::Op::kSyscallBegin;
  std::string syscall;
  std::string subject_label;
  std::string object_label;
  sim::FileId object;
  std::string name;  // pathname component / path when available

  bool entry_valid = false;
  std::string program;       // image containing the entrypoint
  uint64_t entrypoint = 0;   // binary-relative PC

  bool adversary_writable = false;
  bool adversary_readable = false;

  std::string prefix;  // --prefix of the LOG rule

  std::string ToJson() const;

  // Parses one ToJson()-format line; nullopt on malformed input. Together
  // with LogSink::ToJsonLines this gives rule generation a file-based
  // workflow (collect on one system, analyze on another).
  static std::optional<LogRecord> FromJson(std::string_view line);
};

// Appends are serialized so LOG-target rules can fire from concurrent hook
// evaluations; records() exposes the backing vector and is only meaningful
// after the appending threads have quiesced (tests join workers first).
class LogSink {
 public:
  void Append(LogRecord record) {
    std::lock_guard<std::mutex> lock(mu_);
    records_.push_back(std::move(record));
  }
  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    records_.clear();
  }
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return records_.size();
  }
  const std::vector<LogRecord>& records() const { return records_; }

  // Serializes all records, one JSON object per line.
  std::string ToJsonLines() const;

  // Parses a ToJsonLines() dump, appending the records; returns how many
  // lines parsed successfully (malformed lines are skipped).
  size_t FromJsonLines(std::string_view dump);

 private:
  mutable std::mutex mu_;
  std::vector<LogRecord> records_;
};

}  // namespace pf::core

#endif  // SRC_CORE_LOG_H_
