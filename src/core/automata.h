// STATE-protocol automaton lowering (DESIGN.md §5i).
//
// The commit-time pass behind the stateful verdict-cache tier: it promotes
// the analyzer's set/check graph extraction (analysis/analyzer.cc) into a
// shared core pass that groups the program's STATE keys into protocols,
// compiles each protocol into a mixed-radix per-task DFA (program.h
// AutomatonKey/AutomatonProtocol pools), and classifies every (chain, op)
// bucket as state-cacheable or bypass-with-cause. Engine::Authorize folds
// the task's current automaton state into the VerdictKey for state-cacheable
// buckets; rules whose guards the pass cannot prove digit-pure (variable
// --set/--cmp operands, SYSCALL_ARGS beyond the syscall number, LOG,
// INTERP, un-keyed COMPARE, opaque natives, domain overflow) transparently
// keep their buckets on the bypass path.
#ifndef SRC_CORE_AUTOMATA_H_
#define SRC_CORE_AUTOMATA_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/core/program.h"

namespace pf::core {

struct CompiledRuleset;  // engine.h
struct PfTaskState;      // engine.h

// How one instruction touches the STATE dictionary — the per-insn extraction
// shared between this pass and the analyzer's protocol lints, so both see
// exactly what the compiled evaluator will execute. `key` views into the
// program's string pool (kMatchPhase reports the reserved "@phase" key).
struct InsnStateRef {
  std::string_view key;
  bool is_check = false;  // kMatchState*/kMatchPhase
  bool is_set = false;    // kStateSet
  bool is_unset = false;  // kStateUnset
  bool phase = false;     // kMatchPhase (absent key means the init phase)
  // The literal the guard compares or the target stores, when the operand is
  // a compile-time constant; nullopt for variable operands (which keep the
  // rule off the automaton tier) and for cmp-less presence checks / unsets.
  std::optional<int64_t> literal;
  bool variable = false;  // operand present but not a literal
};

std::optional<InsnStateRef> StateRefOfInsn(const PfProgram& prog, const PfInsn& insn);

// Runs the pass over snap.program: rebuilds the automaton pools from every
// live rule record, annotates each record (astate_causes/astate_protocol),
// classifies each bucket (astate_base), closes the classification over JUMP
// edges (astate), and caches per-chain ChainStateFacts for delta commits.
void BuildAutomata(CompiledRuleset& snap);

// Delta twin: recomputes facts for the dirty chains only; when they are
// value-equal to the copied base generation's facts the pools are provably
// unchanged and only the dirty chains' buckets are reclassified (plus the
// global JUMP closure, which is cheap). Any facts change falls back to the
// full rebuild.
void BuildAutomataDelta(CompiledRuleset& snap, const std::vector<std::string>& dirty);

// Derives the task's current automaton state vector (one digit product per
// protocol, in protocol-id order) from its STATE dictionary. Caller holds
// state.mu. The result is cached on the task keyed by (generation tag,
// dict_seq); `tag` disambiguates programs across commits.
const std::vector<uint32_t>& DeriveAutomatonState(const PfProgram& prog, uint64_t tag,
                                                  PfTaskState& state);

// Folds the listed protocols' digits of `astate` (absent/empty => state 0)
// into one VerdictKey field. Returns nullopt on mixed-radix overflow — the
// caller then treats the decision as a plain bypass.
std::optional<uint64_t> FoldAutomatonState(const PfProgram& prog,
                                           const std::vector<uint16_t>& protocols,
                                           const std::vector<uint32_t>* astate);

// Shape summary for pfcheck --json / pftables --check, the automata twin of
// ClassifierStats.
struct AutomataStats {
  uint32_t protocols = 0;
  uint32_t keys = 0;
  uint64_t states = 0;          // sum of per-protocol state counts
  uint32_t lowered_rules = 0;   // stateful rules the automaton tier covers
  uint32_t bypass_rules = 0;    // stateful rules left on the bypass path
  uint32_t state_buckets = 0;   // impure buckets now served via the cache
  uint32_t phase_protocols = 0; // distinguished temporal-phase automata
};
AutomataStats ComputeAutomataStats(const PfProgram& prog);

}  // namespace pf::core

#endif  // SRC_CORE_AUTOMATA_H_
