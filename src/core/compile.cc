// Commit-time lowering: CompiledRuleset -> arena-packed PfProgram (pass 3 of
// Engine::CompileRuleset; see program.h for the instruction format).
//
// Lowering runs after the OpBucket passes so it can re-point the per-(chain,
// op) dispatch tables and the entrypoint index at entry-table slices instead
// of Rule pointers. Rule bodies are emitted in chain order, one guard/match
// instruction sequence per rule, mirroring the legacy walker's evaluation
// order exactly (op precheck, subject precheck, one context round-trip, the
// entrypoint/object default matches, -m modules, target).
//
// Two entry points share the per-chain machinery: LowerProgram builds a
// program from scratch, LowerProgramDelta copies the previous generation's
// program, marks the dirty chains' records dead, and re-lowers only those
// chains — appending their bodies, slices, and classifier tables to the
// copied arena and pools (DESIGN.md §5g).
#include <algorithm>
#include <chrono>
#include <map>
#include <tuple>

#include "src/core/engine.h"
#include "src/core/program.h"

namespace pf::core {

namespace {

PfInsn Op0(PfOp op) {
  PfInsn insn{};
  insn.op = static_cast<uint8_t>(op);
  return insn;
}

RuleRecord LowerRule(ProgramBuilder& b, const Rule& rule, uint32_t rec_idx) {
  PfProgram& prog = b.program();
  RuleRecord rec;
  rec.rule = &rule;
  rec.entry = static_cast<uint32_t>(prog.arena.size());

  PfInsn begin = Op0(PfOp::kRuleBegin);
  begin.a = rec_idx;
  b.Emit(begin);

  // Contextless prechecks first (EvalRule's order): -o, then -s.
  if (rule.op) {
    PfInsn insn = Op0(PfOp::kCheckOp);
    insn.a = static_cast<uint32_t>(*rule.op);
    b.Emit(insn);
  }
  // Per-op buckets only admit rules whose -o already matches, so evaluation
  // through a bucket enters past the guard; entrypoint-index lists enter at
  // entry + kPfInsnWords (see RuleRecord::body).
  rec.body = static_cast<uint32_t>(prog.arena.size());
  if (!rule.subject.wildcard) {
    PfInsn insn = Op0(PfOp::kMatchSubject);
    insn.a = b.InternLabelSet(rule.subject);
    b.Emit(insn);
  }
  // One context round-trip for the rule's install-time needs union; the
  // guard ops below re-ensure their own bits, which then short-circuit.
  if (rule.needs != 0) {
    PfInsn insn = Op0(PfOp::kEnsureCtx);
    insn.a = rule.needs;
    b.Emit(insn);
  }
  // Default matches: entrypoint (-p / -i), then object (--ino / -d). The
  // check ops are self-guarding (each ensures + validates its own context),
  // so no standalone require instruction is emitted.
  if (rule.has_program()) {
    PfInsn insn = Op0(PfOp::kCheckProgram);
    insn.b = rule.program_file.dev;
    insn.c = rule.program_file.ino;
    b.Emit(insn);
  }
  if (rule.entrypoint) {
    PfInsn insn = Op0(PfOp::kCheckEptOff);
    insn.b = *rule.entrypoint;
    b.Emit(insn);
  }
  if (rule.ino) {
    PfInsn insn = Op0(PfOp::kCheckIno);
    insn.b = *rule.ino;
    b.Emit(insn);
  }
  if (!rule.object.wildcard) {
    PfInsn insn = Op0(PfOp::kMatchObject);
    insn.a = b.InternLabelSet(rule.object);
    b.Emit(insn);
  }
  // -m modules in install order. Builtins lower to inline ops; extension
  // modules become virtual escapes.
  for (const auto& match : rule.matches) {
    if (!match->Lower(b)) {
      PfInsn insn = Op0(PfOp::kMatchNative);
      insn.a = b.AddNativeMatch(match.get());
      b.Emit(insn);
    }
  }
  // The target terminates the rule body.
  if (!rule.target->Lower(b)) {
    PfInsn insn = Op0(PfOp::kTargetNative);
    insn.a = b.AddNativeTarget(rule.target.get());
    b.Emit(insn);
  }
  rec.end = static_cast<uint32_t>(prog.arena.size());

  // Side-table links for the analyzer and the disassembler.
  const std::string& jump = rule.target->jump_chain();
  if (!jump.empty()) {
    rec.jump_name = b.InternString(jump);
    rec.jump_chain = b.ChainId(jump);
  }
  rec.static_kind = rule.target->StaticKind();
  return rec;
}

// --- tuple-space classifier --------------------------------------------------

// The exact-match dimensions a rule pins to a single value. A dimension only
// qualifies when a mismatching request is *guaranteed* to fail the rule's
// own guard: a one-sid positive non-SYSHIGH label set, a fully resolved
// entrypoint (-p and -i), an --ino. Everything else (wildcards, negations,
// multi-sid sets, SYSHIGH sets whose membership depends on the MAC policy)
// stays residual and is always scanned.
uint8_t RuleTupleMask(const Rule& rule, TupleKey* key) {
  uint8_t mask = 0;
  const LabelSet& s = rule.subject;
  if (!s.wildcard && !s.negate && !s.syshigh && s.sids.size() == 1) {
    mask |= kTupleDimSubject;
    key->subject = s.sids[0];
  }
  if (rule.IndexableByEntrypoint()) {
    mask |= kTupleDimEpt;
    key->ept_dev = rule.program_file.dev;
    key->ept_ino = rule.program_file.ino;
    key->ept_off = *rule.entrypoint;
  }
  const LabelSet& o = rule.object;
  if (!o.wildcard && !o.negate && !o.syshigh && o.sids.size() == 1) {
    mask |= kTupleDimObject;
    key->object = o.sids[0];
  }
  if (rule.ino) {
    mask |= kTupleDimIno;
    key->ino = *rule.ino;
  }
  return mask;
}

// (mask, key values) — a std::map over this keeps group, table, and slice
// layout deterministic across compiles of the same rule base.
using GroupKey = std::tuple<uint8_t, uint64_t, uint64_t, uint64_t, uint64_t, uint64_t, uint64_t>;

uint32_t NextPow2(uint32_t v) {
  uint32_t p = 1;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

void BuildBucketClassifier(PfProgram& prog, ProgramBucket& pb) {
  pb.residual_off = 0;
  pb.residual_len = 0;
  pb.tuple_off = 0;
  pb.tuple_cnt = 0;
  pb.tuple_dims = 0;
  pb.has_classifier = pb.all_len > 0;
  if (!pb.has_classifier) {
    return;
  }
  std::map<GroupKey, std::vector<uint32_t>> groups;
  std::vector<uint32_t> residual;
  for (uint32_t i = 0; i < pb.all_len; ++i) {
    const uint32_t rec_idx = prog.entries[pb.all_off + i];
    TupleKey key;
    const uint8_t mask = RuleTupleMask(*prog.rules[rec_idx].rule, &key);
    if (mask == 0) {
      residual.push_back(rec_idx);
    } else {
      groups[GroupKey{mask, key.subject, key.ept_dev, key.ept_ino, key.ept_off, key.object,
                      key.ino}]
          .push_back(rec_idx);
    }
  }
  pb.residual_off = static_cast<uint32_t>(prog.entries.size());
  pb.residual_len = static_cast<uint32_t>(residual.size());
  prog.entries.insert(prog.entries.end(), residual.begin(), residual.end());
  pb.tuple_off = static_cast<uint32_t>(prog.tuple_tables.size());
  // One open-addressed table per distinct mask; the map is mask-major so
  // each mask's groups are contiguous.
  for (auto it = groups.begin(); it != groups.end();) {
    const uint8_t mask = std::get<0>(it->first);
    auto end = it;
    uint32_t n = 0;
    while (end != groups.end() && std::get<0>(end->first) == mask) {
      ++end;
      ++n;
    }
    TupleTable table;
    table.mask = mask;
    table.used = n;
    table.slot_count = NextPow2(std::max<uint32_t>(2, n * 2));
    table.slot_off = static_cast<uint32_t>(prog.tuple_slots.size());
    prog.tuple_slots.resize(prog.tuple_slots.size() + table.slot_count);
    for (; it != end; ++it) {
      TupleSlot slot;
      slot.key.subject = static_cast<sim::Sid>(std::get<1>(it->first));
      slot.key.ept_dev = std::get<2>(it->first);
      slot.key.ept_ino = std::get<3>(it->first);
      slot.key.ept_off = std::get<4>(it->first);
      slot.key.object = static_cast<sim::Sid>(std::get<5>(it->first));
      slot.key.ino = std::get<6>(it->first);
      slot.off = static_cast<uint32_t>(prog.entries.size());
      slot.len = static_cast<uint32_t>(it->second.size());
      prog.entries.insert(prog.entries.end(), it->second.begin(), it->second.end());
      uint32_t idx =
          static_cast<uint32_t>(TupleKeyHash(mask, slot.key)) & (table.slot_count - 1);
      while (prog.tuple_slots[table.slot_off + idx].len != 0) {
        idx = (idx + 1) & (table.slot_count - 1);
      }
      prog.tuple_slots[table.slot_off + idx] = slot;
    }
    prog.tuple_tables.push_back(table);
    pb.tuple_dims = static_cast<uint8_t>(pb.tuple_dims | mask);
    ++pb.tuple_cnt;
  }
}

// --- per-chain lowering helpers (shared by full and delta builds) ------------

void LowerChainRules(ProgramBuilder& b, PfProgram& prog, int32_t id, const Chain& chain,
                     std::unordered_map<const Rule*, uint32_t>& rec_of) {
  ProgramChain& pc = prog.chains[static_cast<size_t>(id)];
  for (const auto& rule : chain.rules()) {
    const uint32_t rec_idx = static_cast<uint32_t>(prog.rules.size());
    prog.rules.push_back(LowerRule(b, *rule, rec_idx));
    RuleRecord& rec = prog.rules.back();
    rec.chain_id = id;
    rec.chain_index = static_cast<uint32_t>(pc.rules.size());
    rec_of.emplace(rule.get(), rec_idx);
    pc.rules.push_back(rec_idx);
  }
}

// Re-points one chain's OpBucket tables and entrypoint index at entry-table
// slices and links the CompiledChain to its program chain. The classifier is
// built afterwards (timed separately) over the freshly written `all` slices.
void BuildChainTables(CompiledRuleset& snap, const Chain& chain, int32_t id,
                      const std::unordered_map<const Rule*, uint32_t>& rec_of) {
  PfProgram& prog = snap.program;
  ProgramChain& pc = prog.chains[static_cast<size_t>(id)];
  auto slice = [&prog, &rec_of](const std::vector<const Rule*>& rules) {
    const uint32_t off = static_cast<uint32_t>(prog.entries.size());
    for (const Rule* rule : rules) {
      prog.entries.push_back(rec_of.at(rule));
    }
    return std::pair<uint32_t, uint32_t>(off, static_cast<uint32_t>(rules.size()));
  };
  CompiledChain& cc = snap.compiled.at(&chain);
  cc.program_chain = id;
  pc.op_mask = cc.op_mask;
  for (size_t op = 0; op < sim::kOpCount; ++op) {
    const OpBucket& ob = cc.ops[op];
    ProgramBucket& pb = pc.ops[op];
    std::tie(pb.all_off, pb.all_len) = slice(ob.all);
    std::tie(pb.plain_off, pb.plain_len) = slice(ob.plain);
    pb.needs = ob.needs;
    pb.cacheable = ob.cacheable;
    pb.has_indexed = ob.has_indexed;
  }
  if (chain.index_built() && !chain.ept_index().empty()) {
    auto ept = std::make_shared<EptSliceMap>();
    ept->reserve(chain.ept_index().size());
    for (const auto& [key, rules] : chain.ept_index()) {
      ept->emplace(key, slice(rules));
    }
    pc.ept = std::move(ept);
  } else {
    pc.ept.reset();
  }
}

}  // namespace

void LowerProgram(CompiledRuleset& snap) {
  PfProgram& prog = snap.program;
  ProgramBuilder b(prog);
  Table& filter = snap.rules.filter();

  // Phase 1: create every chain record up front so forward JUMPs resolve to
  // ids during lowering. std::map iteration makes ids name-sorted and
  // deterministic.
  for (const auto& [name, chain] : filter.chains()) {
    const int32_t id = static_cast<int32_t>(prog.chains.size());
    prog.chain_ids.emplace(name, id);
    ProgramChain pc;
    pc.name = name;
    pc.builtin = chain.builtin();
    pc.policy_drop = chain.policy() == Chain::Policy::kDrop;
    pc.index_built = chain.index_built();
    prog.chains.push_back(std::move(pc));
  }
  prog.root_input = prog.FindChain("input");
  prog.root_output = prog.FindChain("output");
  prog.root_create = prog.FindChain("create");
  prog.root_syscallbegin = prog.FindChain("syscallbegin");

  // Phase 2: lower every rule body, chain by chain in id order.
  std::unordered_map<const Rule*, uint32_t> rec_of;
  for (const auto& [name, chain] : filter.chains()) {
    LowerChainRules(b, prog, prog.chain_ids.at(name), chain, rec_of);
  }

  // Phase 3: re-point the OpBucket tables and the entrypoint index at
  // entry-table slices, and link each CompiledChain to its program chain.
  for (auto& [name, chain] : filter.chains()) {
    BuildChainTables(snap, chain, prog.chain_ids.at(name), rec_of);
  }

  // Phase 4: the tuple-space classifier over every bucket's `all` slice.
  const auto t0 = std::chrono::steady_clock::now();
  for (ProgramChain& pc : prog.chains) {
    for (ProgramBucket& pb : pc.ops) {
      BuildBucketClassifier(prog, pb);
    }
  }
  prog.classifier_build_ns += static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                           t0)
          .count());
}

void LowerProgramDelta(CompiledRuleset& snap, const PfProgram& prev,
                       const std::vector<std::string>& dirty_names) {
  PfProgram& prog = snap.program;
  // Prime the append-heavy pools with headroom before the base copy. When
  // `snap` recycles a retired generation's buffers (Engine::CompileRulesetDelta)
  // a bare operator= would size them exactly, and the phase-2 appends below
  // would immediately reallocate — paying the full-pool copy twice. clear()
  // first so a growing reserve moves no stale bytes.
  const auto prime = [](auto& pool, size_t need) {
    if (pool.capacity() < need) {
      pool.clear();
      pool.reserve(need);
    }
  };
  prime(prog.arena, prev.arena.size() + prev.arena.size() / 8 + 1024);
  prime(prog.entries, prev.entries.size() + prev.entries.size() / 8 + 256);
  prime(prog.rules, prev.rules.size() + prev.rules.size() / 8 + 64);
  prime(prog.tuple_slots, prev.tuple_slots.size() + prev.tuple_slots.size() / 8 + 256);
  prime(prog.tuple_tables, prev.tuple_tables.size() + 64);
  prog = prev;  // copy-on-write: the base generation stays live and untouched
  ProgramBuilder b(prog);
  Table& filter = snap.rules.filter();

  std::vector<std::string> dirty(dirty_names);
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());

  // Phase 1: mark the dirty chains' old records dead. Dead records keep
  // their arena words (the suffix append never moves live code) but are
  // unreachable from every live dispatch table; their reclaimable size
  // accumulates until Engine::CommitRuleset's compaction threshold forces a
  // from-scratch relower.
  for (const std::string& name : dirty) {
    ProgramChain& pc = prog.chains[static_cast<size_t>(prog.chain_ids.at(name))];
    for (uint32_t rec_idx : pc.rules) {
      RuleRecord& rec = prog.rules[rec_idx];
      prog.dead_arena_words += rec.end - rec.entry;
      ++prog.dead_rule_records;
      rec.rule = nullptr;
    }
    for (const ProgramBucket& pb : pc.ops) {
      prog.dead_entry_slots += pb.all_len + pb.plain_len + pb.residual_len;
      for (uint32_t t = 0; t < pb.tuple_cnt; ++t) {
        const TupleTable& table = prog.tuple_tables[pb.tuple_off + t];
        for (uint32_t s = 0; s < table.slot_count; ++s) {
          prog.dead_entry_slots += prog.tuple_slots[table.slot_off + s].len;
        }
      }
    }
    if (pc.ept) {
      for (const auto& [key, sl] : *pc.ept) {
        prog.dead_entry_slots += sl.second;
      }
    }
    pc.rules.clear();
    pc.ops.fill(ProgramBucket{});
    pc.ept.reset();
  }

  // Phase 2: re-lower the dirty chains (name-sorted), appending bodies,
  // slices, and classifier tables. Clean chains' tables are byte-identical
  // to the (already verified) base generation.
  std::unordered_map<const Rule*, uint32_t> rec_of;
  for (const std::string& name : dirty) {
    const Chain* chain = filter.Find(name);
    const int32_t id = prog.chain_ids.at(name);
    ProgramChain& pc = prog.chains[static_cast<size_t>(id)];
    pc.policy_drop = chain->policy() == Chain::Policy::kDrop;
    pc.index_built = chain->index_built();
    LowerChainRules(b, prog, id, *chain, rec_of);
  }
  for (const std::string& name : dirty) {
    const Chain* chain = filter.Find(name);
    BuildChainTables(snap, *chain, prog.chain_ids.at(name), rec_of);
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (const std::string& name : dirty) {
    ProgramChain& pc = prog.chains[static_cast<size_t>(prog.chain_ids.at(name))];
    for (ProgramBucket& pb : pc.ops) {
      BuildBucketClassifier(prog, pb);
    }
  }
  prog.classifier_build_ns += static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                           t0)
          .count());
}

}  // namespace pf::core
