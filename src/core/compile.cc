// Commit-time lowering: CompiledRuleset -> arena-packed PfProgram (pass 3 of
// Engine::CompileRuleset; see program.h for the instruction format).
//
// Lowering runs after the OpBucket passes so it can re-point the per-(chain,
// op) dispatch tables and the entrypoint index at entry-table slices instead
// of Rule pointers. Rule bodies are emitted in chain order, one guard/match
// instruction sequence per rule, mirroring the legacy walker's evaluation
// order exactly (op precheck, subject precheck, one context round-trip, the
// entrypoint/object default matches, -m modules, target).
#include "src/core/engine.h"
#include "src/core/program.h"

namespace pf::core {

namespace {

PfInsn Op0(PfOp op) {
  PfInsn insn{};
  insn.op = static_cast<uint8_t>(op);
  return insn;
}

RuleRecord LowerRule(ProgramBuilder& b, const Rule& rule, uint32_t rec_idx) {
  PfProgram& prog = b.program();
  RuleRecord rec;
  rec.rule = &rule;
  rec.entry = static_cast<uint32_t>(prog.arena.size());

  PfInsn begin = Op0(PfOp::kRuleBegin);
  begin.a = rec_idx;
  b.Emit(begin);

  // Contextless prechecks first (EvalRule's order): -o, then -s.
  if (rule.op) {
    PfInsn insn = Op0(PfOp::kCheckOp);
    insn.a = static_cast<uint32_t>(*rule.op);
    b.Emit(insn);
  }
  // Per-op buckets only admit rules whose -o already matches, so evaluation
  // through a bucket enters past the guard; entrypoint-index lists enter at
  // entry + kPfInsnWords (see RuleRecord::body).
  rec.body = static_cast<uint32_t>(prog.arena.size());
  if (!rule.subject.wildcard) {
    PfInsn insn = Op0(PfOp::kMatchSubject);
    insn.a = b.InternLabelSet(rule.subject);
    b.Emit(insn);
  }
  // One context round-trip for the rule's install-time needs union; the
  // guard ops below re-ensure their own bits, which then short-circuit.
  if (rule.needs != 0) {
    PfInsn insn = Op0(PfOp::kEnsureCtx);
    insn.a = rule.needs;
    b.Emit(insn);
  }
  // Default matches: entrypoint (-p / -i), then object (--ino / -d). The
  // check ops are self-guarding (each ensures + validates its own context),
  // so no standalone require instruction is emitted.
  if (rule.has_program()) {
    PfInsn insn = Op0(PfOp::kCheckProgram);
    insn.b = rule.program_file.dev;
    insn.c = rule.program_file.ino;
    b.Emit(insn);
  }
  if (rule.entrypoint) {
    PfInsn insn = Op0(PfOp::kCheckEptOff);
    insn.b = *rule.entrypoint;
    b.Emit(insn);
  }
  if (rule.ino) {
    PfInsn insn = Op0(PfOp::kCheckIno);
    insn.b = *rule.ino;
    b.Emit(insn);
  }
  if (!rule.object.wildcard) {
    PfInsn insn = Op0(PfOp::kMatchObject);
    insn.a = b.InternLabelSet(rule.object);
    b.Emit(insn);
  }
  // -m modules in install order. Builtins lower to inline ops; extension
  // modules become virtual escapes.
  for (const auto& match : rule.matches) {
    if (!match->Lower(b)) {
      PfInsn insn = Op0(PfOp::kMatchNative);
      insn.a = b.AddNativeMatch(match.get());
      b.Emit(insn);
    }
  }
  // The target terminates the rule body.
  if (!rule.target->Lower(b)) {
    PfInsn insn = Op0(PfOp::kTargetNative);
    insn.a = b.AddNativeTarget(rule.target.get());
    b.Emit(insn);
  }
  rec.end = static_cast<uint32_t>(prog.arena.size());

  // Side-table links for the analyzer and the disassembler.
  const std::string& jump = rule.target->jump_chain();
  if (!jump.empty()) {
    rec.jump_name = b.InternString(jump);
    rec.jump_chain = b.ChainId(jump);
  }
  rec.static_kind = rule.target->StaticKind();
  return rec;
}

}  // namespace

void LowerProgram(CompiledRuleset& snap) {
  PfProgram& prog = snap.program;
  ProgramBuilder b(prog);
  Table& filter = snap.rules.filter();

  // Phase 1: create every chain record up front so forward JUMPs resolve to
  // ids during lowering. std::map iteration makes ids name-sorted and
  // deterministic.
  for (const auto& [name, chain] : filter.chains()) {
    const int32_t id = static_cast<int32_t>(prog.chains.size());
    prog.chain_ids.emplace(name, id);
    ProgramChain pc;
    pc.name = name;
    pc.builtin = chain.builtin();
    pc.policy_drop = chain.policy() == Chain::Policy::kDrop;
    pc.index_built = chain.index_built();
    prog.chains.push_back(std::move(pc));
  }
  prog.root_input = prog.FindChain("input");
  prog.root_output = prog.FindChain("output");
  prog.root_create = prog.FindChain("create");
  prog.root_syscallbegin = prog.FindChain("syscallbegin");

  // Phase 2: lower every rule body, chain by chain in id order.
  std::unordered_map<const Rule*, uint32_t> rec_of;
  for (const auto& [name, chain] : filter.chains()) {
    ProgramChain& pc = prog.chains[static_cast<size_t>(prog.chain_ids.at(name))];
    for (const auto& rule : chain.rules()) {
      const uint32_t rec_idx = static_cast<uint32_t>(prog.rules.size());
      prog.rules.push_back(LowerRule(b, *rule, rec_idx));
      RuleRecord& rec = prog.rules.back();
      rec.chain_id = prog.chain_ids.at(name);
      rec.chain_index = static_cast<uint32_t>(pc.rules.size());
      rec_of.emplace(rule.get(), rec_idx);
      pc.rules.push_back(rec_idx);
    }
  }

  // Phase 3: re-point the OpBucket tables and the entrypoint index at
  // entry-table slices, and link each CompiledChain to its program chain.
  auto slice = [&prog, &rec_of](const std::vector<const Rule*>& rules) {
    const uint32_t off = static_cast<uint32_t>(prog.entries.size());
    for (const Rule* rule : rules) {
      prog.entries.push_back(rec_of.at(rule));
    }
    return std::pair<uint32_t, uint32_t>(off, static_cast<uint32_t>(rules.size()));
  };
  for (auto& [name, chain] : filter.chains()) {
    const int32_t id = prog.chain_ids.at(name);
    ProgramChain& pc = prog.chains[static_cast<size_t>(id)];
    CompiledChain& cc = snap.compiled.at(&chain);
    cc.program_chain = id;
    pc.op_mask = cc.op_mask;
    for (size_t op = 0; op < sim::kOpCount; ++op) {
      const OpBucket& ob = cc.ops[op];
      ProgramBucket& pb = pc.ops[op];
      std::tie(pb.all_off, pb.all_len) = slice(ob.all);
      std::tie(pb.plain_off, pb.plain_len) = slice(ob.plain);
      pb.needs = ob.needs;
      pb.cacheable = ob.cacheable;
      pb.has_indexed = ob.has_indexed;
    }
    if (chain.index_built()) {
      for (const auto& [key, rules] : chain.ept_index()) {
        pc.ept.emplace(key, slice(rules));
      }
    }
  }
}

}  // namespace pf::core
