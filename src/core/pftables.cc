#include "src/core/pftables.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>

#include "src/analysis/analyzer.h"
#include "src/analysis/symbolic/diff.h"
#include "src/audit/export.h"
#include "src/core/automata.h"
#include "src/core/modules.h"
#include "src/trace/export.h"

namespace pf::core {

namespace {

bool IsTopLevelFlag(const std::string& t) {
  return t == "-t" || t == "-I" || t == "-A" || t == "-D" || t == "-N" || t == "-F" ||
         t == "-L" || t == "-P" || t == "-s" || t == "-d" || t == "-i" || t == "-o" || t == "-p" ||
         t == "-b" || t == "--ino" || t == "-m" || t == "-j";
}

std::optional<uint64_t> ParseU64(const std::string& token) {
  if (token.empty()) {
    return std::nullopt;
  }
  int base = 10;
  size_t start = 0;
  if (token.size() > 2 && token[0] == '0' && (token[1] == 'x' || token[1] == 'X')) {
    base = 16;
    start = 2;
  }
  uint64_t value = 0;
  auto [ptr, ec] =
      std::from_chars(token.data() + start, token.data() + token.size(), value, base);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return std::nullopt;
  }
  return value;
}

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

// "create/input" means "the create chain (falling back to input)"; we route
// such rules to the first named chain.
std::string NormalizeChain(const std::string& raw) {
  std::string s = Lower(raw);
  auto slash = s.find('/');
  if (slash != std::string::npos) {
    s = s.substr(0, slash);
  }
  return s;
}

using MatchFactory = Status (*)(const std::vector<std::string>&,
                                std::unique_ptr<MatchModule>*);
using TargetFactory = Status (*)(const std::vector<std::string>&,
                                 std::unique_ptr<TargetModule>*);

MatchFactory FindMatchFactory(const std::string& name) {
  if (name == "STATE") return &StateMatch::Create;
  if (name == "SIGNAL_MATCH") return &SignalMatch::Create;
  if (name == "SYSCALL_ARGS") return &SyscallArgsMatch::Create;
  if (name == "COMPARE") return &CompareMatch::Create;
  if (name == "INTERP") return &InterpMatch::Create;
  if (name == "PHASE") return &PhaseMatch::Create;
  return nullptr;
}

TargetFactory FindTargetFactory(const std::string& name) {
  if (name == "STATE") return &StateTarget::Create;
  if (name == "LOG") return &LogTarget::Create;
  if (name == "PHASE") return &PhaseTarget::Create;
  return nullptr;
}

}  // namespace

Status Pftables::Tokenize(const std::string& line, std::vector<std::string>* out) {
  out->clear();
  std::string cur;
  char quote = 0;
  for (char c : line) {
    if (quote != 0) {
      if (c == quote) {
        quote = 0;
      } else {
        cur.push_back(c);
      }
      continue;
    }
    if (c == '\'' || c == '"') {
      quote = c;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\n') {
      if (!cur.empty()) {
        out->push_back(std::move(cur));
        cur.clear();
      }
      continue;
    }
    cur.push_back(c);
  }
  if (quote != 0) {
    return Status::Error(std::string("unterminated ") +
                         (quote == '\'' ? "single" : "double") + " quote in: " + line);
  }
  if (!cur.empty()) {
    out->push_back(std::move(cur));
  }
  return Status::Ok();
}

Status Pftables::ParseLabelSet(const std::string& token, LabelSet* out) {
  std::string body = token;
  out->wildcard = false;
  out->negate = false;
  out->syshigh = false;
  out->sids.clear();
  if (!body.empty() && body[0] == '~') {
    out->negate = true;
    body = body.substr(1);
  }
  if (!body.empty() && body.front() == '{') {
    if (body.back() != '}') {
      return Status::Error("unterminated label set: " + token);
    }
    body = body.substr(1, body.size() - 2);
  }
  if (body.empty()) {
    return Status::Error("empty label set: " + token);
  }
  size_t i = 0;
  while (i <= body.size()) {
    size_t j = body.find('|', i);
    if (j == std::string::npos) {
      j = body.size();
    }
    std::string name = body.substr(i, j - i);
    if (name == "SYSHIGH") {
      out->syshigh = true;
    } else if (!name.empty()) {
      out->sids.push_back(engine_->kernel().labels().Intern(name));
    }
    if (j == body.size()) {
      break;
    }
    i = j + 1;
  }
  return Status::Ok();
}

Status Pftables::ParseRule(const std::vector<std::string>& tokens, size_t from, Rule* rule) {
  size_t i = from;
  auto need_value = [&](const std::string& flag) -> Status {
    if (i >= tokens.size()) {
      return Status::Error(flag + " requires a value");
    }
    return Status::Ok();
  };

  while (i < tokens.size()) {
    const std::string& flag = tokens[i++];
    if (flag == "-s" || flag == "-d") {
      if (Status s = need_value(flag); !s.ok()) {
        return s;
      }
      LabelSet* set = flag == "-s" ? &rule->subject : &rule->object;
      if (Status s = ParseLabelSet(tokens[i++], set); !s.ok()) {
        return s;
      }
    } else if (flag == "-i") {
      if (Status s = need_value(flag); !s.ok()) {
        return s;
      }
      auto ept = ParseU64(tokens[i++]);
      if (!ept) {
        return Status::Error("-i: cannot parse entrypoint");
      }
      rule->entrypoint = *ept;
    } else if (flag == "-o") {
      if (Status s = need_value(flag); !s.ok()) {
        return s;
      }
      auto op = sim::OpFromName(tokens[i++]);
      if (!op) {
        return Status::Error("-o: unknown operation '" + tokens[i - 1] + "'");
      }
      rule->op = *op;
    } else if (flag == "-p" || flag == "-b") {
      if (Status s = need_value(flag); !s.ok()) {
        return s;
      }
      rule->program = tokens[i++];
      auto inode = engine_->kernel().LookupNoHooks(rule->program);
      if (!inode) {
        return Status::Error("-p: program not found: " + rule->program);
      }
      rule->program_file = inode->id();
    } else if (flag == "--ino") {
      if (Status s = need_value(flag); !s.ok()) {
        return s;
      }
      auto ino = ParseU64(tokens[i++]);
      if (!ino) {
        return Status::Error("--ino: cannot parse inode number");
      }
      rule->ino = *ino;
    } else if (flag == "-m") {
      if (Status s = need_value(flag); !s.ok()) {
        return s;
      }
      std::string name = tokens[i++];
      std::vector<std::string> opts;
      while (i < tokens.size() && !IsTopLevelFlag(tokens[i])) {
        opts.push_back(tokens[i++]);
      }
      std::unique_ptr<MatchModule> match;
      if (auto it = custom_matches_.find(name); it != custom_matches_.end()) {
        if (Status s = it->second(opts, &match); !s.ok()) {
          return s;
        }
      } else if (MatchFactory factory = FindMatchFactory(name); factory != nullptr) {
        if (Status s = factory(opts, &match); !s.ok()) {
          return s;
        }
      } else {
        return Status::Error("-m: unknown match module '" + name + "'");
      }
      rule->matches.push_back(std::move(match));
    } else if (flag == "-j") {
      if (Status s = need_value(flag); !s.ok()) {
        return s;
      }
      std::string name = tokens[i++];
      std::vector<std::string> opts;
      while (i < tokens.size() && !IsTopLevelFlag(tokens[i])) {
        opts.push_back(tokens[i++]);
      }
      if (auto it = custom_targets_.find(name); it != custom_targets_.end()) {
        std::unique_ptr<TargetModule> target;
        if (Status s = it->second(opts, &target); !s.ok()) {
          return s;
        }
        rule->target = std::move(target);
      } else if (name == "ACCEPT" || name == "DROP" || name == "RETURN" ||
                 name == "CONTINUE") {
        if (!opts.empty()) {
          return Status::Error("-j " + name + " takes no options");
        }
        TargetKind kind = name == "ACCEPT"   ? TargetKind::kAccept
                          : name == "DROP"   ? TargetKind::kDrop
                          : name == "RETURN" ? TargetKind::kReturn
                                             : TargetKind::kContinue;
        rule->target = std::make_unique<VerdictTarget>(kind);
      } else if (TargetFactory factory = FindTargetFactory(name); factory != nullptr) {
        std::unique_ptr<TargetModule> target;
        if (Status s = factory(opts, &target); !s.ok()) {
          return s;
        }
        rule->target = std::move(target);
      } else {
        // Jump to a user-defined chain (created on demand; chain names are
        // case-insensitive, matching the paper's listings).
        if (!opts.empty()) {
          return Status::Error("-j <chain> takes no options");
        }
        std::string chain = NormalizeChain(name);
        engine_->ruleset().filter().GetOrCreate(chain);
        rule->target = std::make_unique<JumpTarget>(chain);
      }
    } else {
      return Status::Error("unknown flag '" + flag + "'");
    }
  }

  if (!rule->target) {
    rule->target = std::make_unique<VerdictTarget>(TargetKind::kContinue);
  }

  // Compute the union of context requirements (introspection + eager mode).
  rule->needs = 0;
  if (rule->has_program() || rule->entrypoint) {
    rule->needs |= CtxBit(Ctx::kEntrypoint);
  }
  if (!rule->object.wildcard || rule->ino) {
    rule->needs |= CtxBit(Ctx::kObject);
    if (rule->object.syshigh) {
      rule->needs |= CtxBit(Ctx::kAdversaryAccess);
    }
  }
  for (const auto& m : rule->matches) {
    rule->needs |= m->Needs();
  }
  rule->needs |= rule->target->Needs();
  return Status::Ok();
}

void Pftables::ReindexAll(Table& table) {
  // Every mutation invalidates only its own chain's index, so rebuilding the
  // already-built ones would be pure waste — at a 100k-rule base the skip is
  // what keeps a one-rule edit from paying an O(total rules) reindex.
  for (auto& [name, chain] : table.chains()) {
    if (!chain.index_built()) {
      chain.BuildIndex();
    }
  }
}

void Pftables::Reindex(Table& table) {
  if (batching_) {
    batch_dirty_ = true;
    return;
  }
  ReindexAll(table);
}

Status Pftables::CommitStaged() {
  if (batching_) {
    batch_dirty_ = true;
    return Status::Ok();
  }
  if (Status cs = engine_->CommitRuleset(); !cs.ok()) {
    return Status::Error("commit rejected: " + cs.message());
  }
  return Status::Ok();
}

Status Pftables::FlushBatch() {
  if (!batch_dirty_) {
    return Status::Ok();
  }
  batch_dirty_ = false;
  ReindexAll(engine_->ruleset().filter());
  ReindexAll(engine_->ruleset().mangle());
  if (Status cs = engine_->CommitRuleset(); !cs.ok()) {
    return Status::Error("commit rejected: " + cs.message());
  }
  return Status::Ok();
}

Status Pftables::DiffAgainstFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::Error("--diff: cannot read " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string content = buf.str();
  // The "old" side loads into a scratch engine sharing this engine's kernel
  // (same label registry, MAC policy, and program images — required for a
  // joint symbolic universe) but never registered with it: nothing the file
  // stages can ever serve a request.
  Engine old_engine(engine_->kernel(), engine_->config());
  Pftables old_front(&old_engine);
  old_front.custom_matches_ = custom_matches_;
  old_front.custom_targets_ = custom_targets_;
  const size_t first = content.find_first_not_of(" \t\r\n");
  Status load;
  if (first != std::string::npos && content[first] == '*') {
    load = old_front.Restore(content);
  } else {
    std::vector<std::string> lines;
    std::istringstream stream(content);
    for (std::string line; std::getline(stream, line);) {
      lines.push_back(line);
    }
    load = old_front.ExecAll(lines);
  }
  if (!load.ok()) {
    return Status::Error("--diff: loading " + path + ": " + load.message());
  }
  const std::shared_ptr<CompiledRuleset> oldrs = old_engine.CompileRuleset();
  const std::shared_ptr<CompiledRuleset> newrs = engine_->CompileRuleset();
  const analysis::symbolic::DiffResult diff =
      analysis::symbolic::DiffRulesets(*oldrs, *newrs, engine_->policy());
  std::fputs(analysis::symbolic::RenderDiffText(diff).c_str(), stdout);
  return Status::Ok();
}

std::string Pftables::AuditText() const {
  trace::NameTable names{&engine_->kernel().labels()};
  return audit::RenderWindows(engine_->audit(), names);
}

Status Pftables::Exec(const std::string& command) {
  std::vector<std::string> tokens;
  if (Status s = Tokenize(command, &tokens); !s.ok()) {
    return s;
  }
  size_t i = 0;
  if (tokens.empty() || tokens[0][0] == '#' || tokens[0][0] == '*') {
    return Status::Ok();  // comment / annotation line
  }
  if (tokens[0] == "pftables") {
    ++i;
  }

  // Global flags (--check, --diff, the widening gate, and -t in any order)
  // before the chain command.
  std::string table_name = "filter";
  CheckMode check = CheckMode::kOff;
  std::string diff_path;
  bool widening_gate = false;
  bool allow_widening = false;
  bool audit_view = false;
  while (i < tokens.size()) {
    const std::string& t = tokens[i];
    if (t == "-t" && i + 1 < tokens.size()) {
      table_name = tokens[i + 1];
      i += 2;
    } else if (t == "--check" || t.rfind("--check=", 0) == 0) {
      if (t == "--check" || t == "--check=error") {
        check = CheckMode::kError;
      } else if (t == "--check=warn") {
        check = CheckMode::kWarn;
      } else {
        return Status::Error("--check mode must be 'error' or 'warn'");
      }
      ++i;
    } else if (t == "--diff" && i + 1 < tokens.size()) {
      diff_path = tokens[i + 1];
      i += 2;
    } else if (t == "--widening-gate") {
      widening_gate = true;
      ++i;
    } else if (t == "--allow-widening") {
      allow_widening = true;
      ++i;
    } else if (t == "--audit") {
      audit_view = true;
      ++i;
    } else {
      break;
    }
  }
  if (audit_view) {
    // `--audit` is a standalone report like `--diff`: render the audit hub's
    // live aggregator view; no chain command follows.
    std::fputs(AuditText().c_str(), stdout);
    return Status::Ok();
  }
  if (!diff_path.empty()) {
    // `--diff old.rules` is a standalone report: the live base is the "new"
    // side, the file the "old" side; no chain command follows.
    return DiffAgainstFile(diff_path);
  }
  Table* table = engine_->ruleset().FindTable(table_name);
  if (table == nullptr) {
    return Status::Error("unknown table '" + table_name + "'");
  }
  // Rollback copy for the --check=error and --widening-gate gates, taken
  // before any mutation (cheap: chains copy structurally, the Rule objects
  // are shared).
  std::optional<RuleSet> backup;
  if (check != CheckMode::kOff || widening_gate) {
    backup = engine_->ruleset();
  }

  // Chain command (default: append to input).
  enum class Cmd { kInsert, kAppend, kDelete, kNew, kFlush, kList, kPolicy, kZero } cmd =
      Cmd::kAppend;
  std::string chain_name = "input";
  bool chain_given = false;
  size_t position = 0;
  bool has_position = false;

  if (i < tokens.size() &&
      (tokens[i] == "-I" || tokens[i] == "-A" || tokens[i] == "-D" || tokens[i] == "-N" ||
       tokens[i] == "-F" || tokens[i] == "-L" || tokens[i] == "-P" || tokens[i] == "-Z")) {
    std::string c = tokens[i++];
    cmd = c == "-I"   ? Cmd::kInsert
          : c == "-A" ? Cmd::kAppend
          : c == "-D" ? Cmd::kDelete
          : c == "-N" ? Cmd::kNew
          : c == "-F" ? Cmd::kFlush
          : c == "-P" ? Cmd::kPolicy
          : c == "-Z" ? Cmd::kZero
                      : Cmd::kList;
    while (cmd == Cmd::kList && i < tokens.size() &&
           (tokens[i] == "--compiled" || tokens[i] == "-v")) {
      ++i;  // display modifiers: listing itself comes from List()/ListCompiled()
    }
    if (i < tokens.size() && !IsTopLevelFlag(tokens[i])) {
      chain_name = NormalizeChain(tokens[i++]);
      chain_given = true;
    } else if (cmd != Cmd::kFlush && cmd != Cmd::kList && cmd != Cmd::kZero) {
      return Status::Error("chain name required");
    }
    if (i < tokens.size() && (cmd == Cmd::kInsert || cmd == Cmd::kDelete)) {
      if (auto pos = ParseU64(tokens[i]); pos && !IsTopLevelFlag(tokens[i])) {
        position = static_cast<size_t>(*pos);
        has_position = true;
        ++i;
      }
    }
    if (cmd == Cmd::kDelete && !has_position) {
      return Status::Error("-D requires a rule number");
    }
  }

  // Mutating commands defer CommitRuleset until after the --check gate has
  // seen (and possibly vetoed) the staged edit, so a rejected command never
  // publishes a generation.
  bool need_commit = false;
  switch (cmd) {
    case Cmd::kNew: {
      if (!table->NewChain(chain_name)) {
        return Status::Error("chain exists: " + chain_name);
      }
      break;  // -N never committed eagerly: an empty chain changes nothing
    }
    case Cmd::kFlush: {
      if (!chain_given) {
        table->FlushAll();
      } else if (Chain* chain = table->Find(chain_name)) {
        chain->Flush();
      } else {
        return Status::Error("no such chain: " + chain_name);
      }
      Reindex(*table);
      need_commit = true;
      break;
    }
    case Cmd::kList:
      return Status::Ok();  // use List() for output
    case Cmd::kZero:
      // Counters are shared with every published snapshot; zeroing needs no
      // commit and must not disturb the staged rule base.
      return ZeroCounters(chain_given ? chain_name : std::string());
    case Cmd::kPolicy: {
      Chain* chain = table->Find(chain_name);
      if (chain == nullptr) {
        return Status::Error("no such chain: " + chain_name);
      }
      if (!chain->builtin()) {
        return Status::Error("-P applies to builtin chains only");
      }
      if (i >= tokens.size()) {
        return Status::Error("-P requires ACCEPT or DROP");
      }
      std::string policy = tokens[i++];
      if (policy == "ACCEPT") {
        chain->set_policy(Chain::Policy::kAccept);
      } else if (policy == "DROP") {
        chain->set_policy(Chain::Policy::kDrop);
      } else {
        return Status::Error("-P requires ACCEPT or DROP");
      }
      need_commit = true;
      break;
    }
    case Cmd::kDelete: {
      Chain* chain = table->Find(chain_name);
      if (chain == nullptr) {
        return Status::Error("no such chain: " + chain_name);
      }
      if (position == 0 || !chain->Delete(position - 1)) {
        return Status::Error("no rule at position");
      }
      Reindex(*table);
      need_commit = true;
      break;
    }
    case Cmd::kInsert:
    case Cmd::kAppend: {
      auto rule = std::make_shared<Rule>();
      rule->source = command;
      if (Status s = ParseRule(tokens, i, rule.get()); !s.ok()) {
        return s;
      }
      Chain& chain = table->GetOrCreate(chain_name);
      if (cmd == Cmd::kInsert) {
        chain.Insert(std::move(rule), has_position ? position - 1 : 0);
      } else {
        chain.Append(std::move(rule));
      }
      Reindex(*table);
      need_commit = true;
      break;
    }
  }

  if (check != CheckMode::kOff) {
    last_check_ = analysis::AnalyzeEngine(*engine_);
    if (check == CheckMode::kError && last_check_.HasErrors()) {
      engine_->ruleset() = std::move(*backup);
      ReindexAll(engine_->ruleset().filter());
      return Status::Error("--check rejected the command: " +
                           std::to_string(last_check_.errors()) +
                           " error(s)\n" + last_check_.RenderText());
    }
    if (!last_check_.empty()) {
      std::fputs(("pftables --check:\n" + last_check_.RenderText()).c_str(), stderr);
    }
    // Shape of the tuple-space classifier the gated compile produced — the
    // operator-facing view of how much of the base Authorize can skip.
    const std::shared_ptr<CompiledRuleset> checked = engine_->CompileRuleset();
    const ClassifierStats cstats = ComputeClassifierStats(checked->program);
    std::fprintf(stderr,
                 "pftables --check: classifier tables=%u tuples=%u max_slice=%u "
                 "residual=%u\n",
                 cstats.tables, cstats.tuples, cstats.max_slice, cstats.residual_rules);
    if (checked->program.automata_built) {
      const AutomataStats astats = ComputeAutomataStats(checked->program);
      std::fprintf(stderr,
                   "pftables --check: automata protocols=%u keys=%u states=%llu "
                   "lowered=%u bypass=%u state_buckets=%u\n",
                   astats.protocols, astats.keys,
                   static_cast<unsigned long long>(astats.states),
                   astats.lowered_rules, astats.bypass_rules, astats.state_buckets);
    }
  }
  if (widening_gate && need_commit) {
    // Semantic no-unintended-widening gate: diff the staged base against the
    // generation actually serving requests. A DROP→ALLOW flip anywhere in
    // the decision space vetoes the command transactionally — the staged
    // edit rolls back and the published generation is never touched.
    const std::shared_ptr<const CompiledRuleset> published = engine_->PublishedRuleset();
    const std::shared_ptr<CompiledRuleset> staged = engine_->CompileRuleset();
    if (published != nullptr) {
      const analysis::symbolic::DiffResult diff =
          analysis::symbolic::DiffRulesets(*published, *staged, engine_->policy());
      if (diff.any_widening && !allow_widening) {
        engine_->ruleset() = std::move(*backup);
        ReindexAll(engine_->ruleset().filter());
        std::string witness;
        for (const auto& region : diff.regions) {
          if (region.widening) {
            witness = "  " + std::string(sim::OpName(region.op)) + ": " +
                      std::string(analysis::symbolic::OutcomeName(region.from)) + " -> " +
                      std::string(analysis::symbolic::OutcomeName(region.to)) + " at " +
                      region.witness;
            break;
          }
        }
        return Status::Error(
            "--widening-gate rejected the command: it widens access "
            "(re-run with --allow-widening to override)\n" + witness);
      }
    }
  }
  if (need_commit) {
    if (Status cs = CommitStaged(); !cs.ok()) {
      // The load-time verifier vetoed the compiled program: the published
      // generation is untouched (CommitRuleset never swaps on error). Roll
      // the staged edit back too when --check armed a backup; without one
      // the staging base keeps the edit, but nothing unverified ever serves.
      if (backup) {
        engine_->ruleset() = std::move(*backup);
        ReindexAll(engine_->ruleset().filter());
      }
      return cs;
    }
  }
  return Status::Ok();
}

Status Pftables::ExecAll(const std::vector<std::string>& commands) {
  batching_ = true;
  Status result = Status::Ok();
  for (const std::string& cmd : commands) {
    Status s;
    if (cmd.find("--check") != std::string::npos ||
        cmd.find("--widening-gate") != std::string::npos ||
        cmd.find("--diff") != std::string::npos) {
      // A --check or --widening-gate line gates (and may roll back) the
      // staged base, and a --diff line compiles it, so every deferred edit
      // must be reindexed and committed before it runs — and the line itself
      // runs unbatched, keeping its gate-then-commit order.
      batching_ = false;
      s = FlushBatch();
      if (s.ok()) {
        s = Exec(cmd);
      }
      batching_ = true;
    } else {
      s = Exec(cmd);
    }
    if (!s.ok()) {
      result = Status::Error(s.message() + " in: " + cmd);
      break;
    }
  }
  batching_ = false;
  // First error wins, but the lines that succeeded before it stay staged —
  // flush so they are indexed and published exactly as with per-line Exec.
  if (Status flush = FlushBatch(); !flush.ok() && result.ok()) {
    result = flush;
  }
  return result;
}

namespace {
// Renders a rule spec in command syntax (shared by List and Save).
std::string RenderRuleSpec(const Rule& r, const sim::LabelRegistry& labels) {
  std::ostringstream oss;
  if (r.op) {
    oss << "-o " << sim::OpName(*r.op) << " ";
  }
  if (!r.subject.wildcard) {
    oss << "-s " << r.subject.Render(labels) << " ";
  }
  if (!r.object.wildcard) {
    oss << "-d " << r.object.Render(labels) << " ";
  }
  if (r.has_program()) {
    oss << "-p " << r.program << " ";
  }
  if (r.entrypoint) {
    oss << "-i 0x" << std::hex << *r.entrypoint << std::dec << " ";
  }
  if (r.ino) {
    oss << "--ino " << *r.ino << " ";
  }
  for (const auto& m : r.matches) {
    oss << "-m " << m->Render() << " ";
  }
  oss << "-j " << r.target->Render();
  return oss.str();
}
}  // namespace

std::string Pftables::List(const std::string& table_name, bool verbose) const {
  std::ostringstream oss;
  Table* table = engine_->ruleset().FindTable(table_name);
  if (table == nullptr) {
    return "unknown table\n";
  }
  const sim::LabelRegistry& labels = engine_->kernel().labels();
  // Verbose listings annotate each rule with the automaton pass's verdict:
  // which STATE protocol covers it (cacheable via the stateful tier) or
  // which construct keeps its decisions on the verdict-cache bypass path.
  std::shared_ptr<CompiledRuleset> compiled;
  std::map<const Rule*, const RuleRecord*> records;
  if (verbose && table_name == "filter") {
    compiled = engine_->CompileRuleset();
    if (compiled->program.automata_built) {
      for (const RuleRecord& rec : compiled->program.rules) {
        if (rec.rule != nullptr) {
          records[rec.rule] = &rec;
        }
      }
    }
  }
  auto automaton_note = [&](const Rule* r) -> std::string {
    auto it = records.find(r);
    if (it == records.end()) {
      return "";
    }
    const RuleRecord& rec = *it->second;
    if (rec.astate_causes != 0) {
      return " bypass=" + RenderBypassCauses(rec.astate_causes);
    }
    if (rec.astate_protocol >= 0) {
      return " automaton=p" + std::to_string(rec.astate_protocol);
    }
    return "";  // pure rule: no stateful decision to attribute
  };
  for (const auto& [name, chain] : table->chains()) {
    uint64_t chain_evals = 0;
    uint64_t chain_hits = 0;
    uint64_t chain_ns = 0;
    if (verbose) {
      for (const auto& r : chain.rules()) {
        chain_evals += r->evals.load();
        chain_hits += r->hits.load();
        chain_ns += r->eval_ns.load();
      }
    }
    oss << "Chain " << name << " (" << chain.size() << " rules"
        << (chain.builtin() ? ", builtin" : "") << ")";
    if (verbose) {
      oss << " [evals=" << chain_evals << " hits=" << chain_hits << " time=" << chain_ns
          << "ns]";
    }
    oss << "\n";
    size_t idx = 1;
    for (const auto& r : chain.rules()) {
      oss << "  " << idx++ << ". " << RenderRuleSpec(*r, labels);
      oss << "  [evals=" << r->evals.load() << " hits=" << r->hits.load();
      if (verbose) {
        // Wall time attributed by the per-rule tracepoint (Event::kRule);
        // zero unless rule tracing has been enabled on the engine.
        oss << " time=" << r->eval_ns.load() << "ns";
        oss << automaton_note(r.get());
      }
      oss << "]\n";
    }
  }
  // Annotate the listing with the analyzer's findings (the engine only
  // traverses the filter table, so only its listing is analyzed).
  if (table_name == "filter") {
    analysis::AnalysisReport report = analysis::AnalyzeEngine(*engine_);
    if (!report.empty()) {
      oss << "# analyzer: " << report.errors() << " error(s), " << report.warnings()
          << " warning(s)\n";
      std::istringstream lines(report.RenderText());
      std::string line;
      while (std::getline(lines, line)) {
        oss << "# " << line << "\n";
      }
    }
  }
  return oss.str();
}

std::string Pftables::ListCompiled() const {
  return DisassemblePfProgram(engine_->CompileRuleset()->program,
                              engine_->kernel().labels());
}

std::string Pftables::Save(const std::string& table_name) const {
  std::ostringstream oss;
  Table* table = engine_->ruleset().FindTable(table_name);
  if (table == nullptr) {
    return "";
  }
  const sim::LabelRegistry& labels = engine_->kernel().labels();
  oss << "* pftables-save table=" << table_name << "\n";
  for (const auto& [name, chain] : table->chains()) {
    if (!chain.builtin()) {
      oss << "pftables -t " << table_name << " -N " << name << "\n";
    } else if (chain.policy() == Chain::Policy::kDrop) {
      oss << "pftables -t " << table_name << " -P " << name << " DROP\n";
    }
  }
  for (const auto& [name, chain] : table->chains()) {
    for (const auto& r : chain.rules()) {
      oss << "pftables -t " << table_name << " -A " << name << " "
          << RenderRuleSpec(*r, labels) << "\n";
    }
  }
  return oss.str();
}

Status Pftables::Restore(const std::string& dump, CheckMode check) {
  // With a check mode the dump is one transaction: any failure below rolls
  // the staging rule base back to this copy and republishes it (lines
  // commit individually as they execute, so the rollback must commit too).
  std::optional<RuleSet> backup;
  if (check != CheckMode::kOff) {
    backup = engine_->ruleset();
  }
  auto roll_back = [&]() {
    engine_->ruleset() = std::move(*backup);
    ReindexAll(engine_->ruleset().filter());
    // Rolling back to a base that committed before; re-verification passes.
    (void)engine_->CommitRuleset();
  };

  size_t i = 0;
  while (i < dump.size()) {
    size_t j = dump.find('\n', i);
    if (j == std::string::npos) {
      j = dump.size();
    }
    std::string line = dump.substr(i, j - i);
    // Skip -N failures for chains that already exist (idempotent restore).
    Status s = Exec(line);
    if (!s.ok() && line.find(" -N ") == std::string::npos) {
      if (backup) {
        roll_back();
      }
      return Status::Error(s.message() + " in: " + line);
    }
    i = j + 1;
  }

  if (check != CheckMode::kOff) {
    last_check_ = analysis::AnalyzeEngine(*engine_);
    if (check == CheckMode::kError && last_check_.HasErrors()) {
      roll_back();
      return Status::Error("--check rejected the restore: " +
                           std::to_string(last_check_.errors()) +
                           " error(s)\n" + last_check_.RenderText());
    }
    if (!last_check_.empty()) {
      std::fputs(("pftables --check:\n" + last_check_.RenderText()).c_str(), stderr);
    }
  }
  return Status::Ok();
}

Status Pftables::ZeroCounters(const std::string& chain_name) {
  if (!chain_name.empty() && engine_->ruleset().filter().Find(chain_name) == nullptr &&
      engine_->ruleset().mangle().Find(chain_name) == nullptr) {
    return Status::Error("no such chain: " + chain_name);
  }
  // Mark the counter-mutation window (see Engine::stats() for the tearing
  // contract): a stats() aggregation racing this zeroing reports torn=true.
  engine_->BeginCounterMutation();
  for (Table* table : {&engine_->ruleset().filter(), &engine_->ruleset().mangle()}) {
    for (auto& [name, chain] : table->chains()) {
      if (!chain_name.empty() && name != chain_name) {
        continue;
      }
      for (const auto& r : chain.rules()) {
        // Counters are shared with every published snapshot, so zeroing the
        // staging rules zeroes the live ones too — no commit needed.
        r->evals.store(0, std::memory_order_relaxed);
        r->hits.store(0, std::memory_order_relaxed);
        r->eval_ns.store(0, std::memory_order_relaxed);
      }
    }
  }
  engine_->EndCounterMutation();
  return Status::Ok();
}

}  // namespace pf::core
