// Symbolic-lowering sink for the decision-space analyzer
// (src/analysis/symbolic). MatchModule::Symbolize() describes a module's
// accepted packet set as a conjunction of per-dimension constraints against
// this interface, mirroring how Lower() describes its evaluation as program
// instructions. The analyzer implements the sink twice: once to collect the
// constants that define the finite atom universe, once to build the actual
// per-rule conjunction.
//
// A module that cannot express itself exactly must return false from
// Symbolize() (the analyzer then models it as an uninterpreted boolean
// dimension keyed by Name()+Render(), which keeps the partition sound but
// proves less), or call Opaque() for just the inexpressible residue.
#ifndef SRC_CORE_SYMBOLIZE_H_
#define SRC_CORE_SYMBOLIZE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "src/sim/lsm.h"
#include "src/sim/task.h"

namespace pf::core {

class SymbolicSink {
 public:
  virtual ~SymbolicSink() = default;

  // STATE --key K [--cmp literal] [--nequal]: the per-task dictionary holds
  // K and its value compares to the literal (no literal: any value present).
  // An absent key never matches, negated or not. Variable-valued --cmp
  // operands must not be symbolized this way — return false instead.
  virtual void StateCheck(const std::string& key, std::optional<int64_t> cmp,
                          bool negate) = 0;

  // SYSCALL_ARGS --arg N --equal/--nequal V. Arg 0 is the syscall number,
  // args 1..4 the syscall arguments.
  virtual void SyscallArg(int arg, int64_t value, bool negate) = 0;

  // INTERP [--script SUFFIX] [--lang L]: the innermost interpreter frame's
  // script path ends with SUFFIX (empty: any script) in language L (unset:
  // any language). Requires an interpreter frame to exist at all.
  virtual void Interp(const std::string& suffix,
                      std::optional<sim::InterpLang> lang) = 0;

  // The module can only accept requests of this operation (e.g. SIGNAL_MATCH
  // pins kSignalDeliver). Composes with the rule's own -o operand.
  virtual void OpPin(sim::Op op) = 0;

  // The module's result is a constant, independent of the decision tuple
  // (e.g. COMPARE of two literals).
  virtual void Const(bool result) = 0;

  // An uninterpreted boolean predicate, keyed by (module name, render).
  // Predicates with equal keys are the same dimension, so render-equal
  // opaque modules still shadow each other exactly.
  virtual void Opaque(std::string_view name, const std::string& render) = 0;
};

}  // namespace pf::core

#endif  // SRC_CORE_SYMBOLIZE_H_
