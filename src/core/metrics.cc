// Engine::MetricsText(): Prometheus text exposition of the engine's
// counters, verdict-cache rates, trace-ring health, and decision-latency
// histograms. Served verbatim by `pfshell stats --prom` and the pftrace CLI;
// the format is tested against a real exposition-format parser in
// tests/trace/trace_export_test.cc.
#include "src/audit/export.h"
#include "src/core/engine.h"
#include "src/trace/export.h"
#include "src/trace/metrics.h"

namespace pf::core {

namespace {

// Exposition names of the Ctx context modules (packet.h). The analyzer keeps
// its own human-facing copy; these are stable label values, lowercase by
// Prometheus convention.
std::string_view CtxMetricName(Ctx c) {
  switch (c) {
    case Ctx::kObject:
      return "object";
    case Ctx::kLinkTarget:
      return "link_target";
    case Ctx::kAdversaryAccess:
      return "adversary_access";
    case Ctx::kEntrypoint:
      return "entrypoint";
    case Ctx::kUserStack:
      return "user_stack";
    case Ctx::kInterpStack:
      return "interp_stack";
    case Ctx::kCount:
      break;
  }
  return "unknown";
}

}  // namespace

std::string Engine::MetricsText() const {
  // A torn snapshot (concurrent reset/zeroing) gets one retry; after that it
  // is exposed as-is with pf_stats_torn=1 so the scraper can discard it.
  EngineStats s = stats();
  if (s.torn) {
    s = stats();
  }

  trace::PromWriter w;
  w.Family("pf_invocations_total", "Authorization hook invocations", "counter");
  w.Counter("pf_invocations_total", {}, s.invocations);
  w.Family("pf_drops_total", "Denied accesses", "counter");
  w.Counter("pf_drops_total", {}, s.drops);
  w.Family("pf_audited_drops_total", "Denials suppressed by audit mode", "counter");
  w.Counter("pf_audited_drops_total", {}, s.audited_drops);
  w.Family("pf_rules_evaluated_total", "Rule evaluations", "counter");
  w.Counter("pf_rules_evaluated_total", {}, s.rules_evaluated);
  w.Family("pf_ept_chain_hits_total", "Entrypoint-indexed chain selections", "counter");
  w.Counter("pf_ept_chain_hits_total", {}, s.ept_chain_hits);
  w.Family("pf_unwinds_total", "User-stack unwinds performed", "counter");
  w.Counter("pf_unwinds_total", {}, s.unwinds);
  w.Family("pf_unwind_cache_hits_total", "Unwinds served from the per-syscall cache",
           "counter");
  w.Counter("pf_unwind_cache_hits_total", {}, s.unwind_cache_hits);
  w.Family("pf_ruleset_refreshes_total", "Per-worker ruleset snapshot re-pins", "counter");
  w.Counter("pf_ruleset_refreshes_total", {}, s.ruleset_refreshes);

  w.Family("pf_vcache_probes_total", "Verdict-cache probe outcomes", "counter");
  w.Counter("pf_vcache_probes_total", {{"result", "hit"}}, s.vcache_hits);
  w.Counter("pf_vcache_probes_total", {{"result", "miss"}}, s.vcache_misses);
  w.Counter("pf_vcache_probes_total", {{"result", "bypass"}}, s.vcache_bypasses);
  w.Family("pf_vcache_hit_ratio", "Verdict-cache hits / (hits + misses)", "gauge");
  const uint64_t probes = s.vcache_hits + s.vcache_misses;
  w.Gauge("pf_vcache_hit_ratio", {},
          probes == 0 ? 0.0 : static_cast<double>(s.vcache_hits) / probes);
  w.Family("pf_vcache_state_probes_total",
           "Stateful-tier probes served with an automaton-extended key", "counter");
  w.Counter("pf_vcache_state_probes_total", {{"result", "hit"}}, s.vcache_state_hits);
  w.Counter("pf_vcache_state_probes_total", {{"result", "miss"}}, s.vcache_state_misses);
  w.Family("pf_vcache_bypasses_total", "Verdict-cache bypasses by primary cause",
           "counter");
  for (size_t i = 0; i < s.vcache_bypass_causes.size(); ++i) {
    w.Counter("pf_vcache_bypasses_total",
              {{"cause", BypassCauseName(static_cast<uint8_t>(1u << i))}},
              s.vcache_bypass_causes[i]);
  }

  w.Family("pf_ctx_fetches_total", "Context-module fetches by kind", "counter");
  for (size_t i = 0; i < s.ctx_fetches.size(); ++i) {
    w.Counter("pf_ctx_fetches_total",
              {{"ctx", std::string(CtxMetricName(static_cast<Ctx>(i)))}},
              s.ctx_fetches[i]);
  }

  // Ring-health and audit families are written by their owning subsystems —
  // one source of truth for family/help text, shared by every exposition
  // surface (pfshell stats --prom, pftrace --prom all serve this string).
  trace::WriteRingFamilies(w, trace_);
  audit::WriteAuditFamilies(w, audit_);

  w.Family("pf_ruleset_generation", "Published ruleset generation", "gauge");
  w.Gauge("pf_ruleset_generation", {}, static_cast<double>(ruleset_generation()));
  w.Family("pf_stats_generation", "Counter-mutation generation at snapshot time",
           "gauge");
  w.Gauge("pf_stats_generation", {}, static_cast<double>(s.stats_generation));
  w.Family("pf_stats_torn", "1 when this snapshot raced a counter reset", "gauge");
  w.Gauge("pf_stats_torn", {}, s.torn ? 1.0 : 0.0);

  // Decision-latency histograms for every (op, path) cell that has samples.
  bool any = false;
  for (uint32_t op = 0; op < sim::kOpCount && !any; ++op) {
    for (size_t p = 0; p < trace::kPathCount && !any; ++p) {
      any = trace_.histogram(op, static_cast<trace::Path>(p)).count() > 0;
    }
  }
  if (any) {
    w.Family("pf_decision_latency_ns", "Authorize latency by op and decision path",
             "histogram");
    for (uint32_t op = 0; op < sim::kOpCount; ++op) {
      for (size_t p = 0; p < trace::kPathCount; ++p) {
        const auto path = static_cast<trace::Path>(p);
        const trace::LatencyHistogram& h = trace_.histogram(op, path);
        if (h.count() == 0) {
          continue;
        }
        w.Histogram("pf_decision_latency_ns",
                    {{"op", std::string(sim::OpName(static_cast<sim::Op>(op)))},
                     {"path", std::string(trace::PathName(path))}},
                    h);
      }
    }
  }
  return w.str();
}

}  // namespace pf::core
