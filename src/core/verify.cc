#include "src/core/verify.h"

#include <algorithm>
#include <deque>
#include <string>
#include <tuple>
#include <vector>

#include "src/core/engine.h"

namespace pf::core {

namespace {

using analysis::RuleLocus;
using analysis::Severity;

// The verifier's mutable walk state: the program under proof, the report
// being filled, and the record currently being walked. Loci are constructed
// only when a finding is emitted — the clean path (every commit) must not
// pay for diagnostic strings, the verifier runs inside CompileRuleset.
struct Verifier {
  const PfProgram& prog;
  const VerifyOptions& opts;
  analysis::AnalysisReport* report;
  const RuleRecord* cur = nullptr;  // record under CheckRecord, else null
  // Pool bounds, hoisted once: the per-insn loop compares against these on
  // every instruction and must not re-derive vector sizes through `report`
  // aliasing barriers.
  const uint64_t nstrings = prog.strings.size();
  const uint64_t noperands = prog.operands.size();
  const uint64_t nlabelsets = prog.labelsets.size();
  const uint64_t nsids = prog.sid_pool.size();
  const uint64_t nchains = prog.chains.size();
  const uint64_t nmatches = prog.native_matches.size();
  const uint64_t ntargets = prog.native_targets.size();
  const uint64_t ntuptables = prog.tuple_tables.size();
  const uint64_t ntupslots = prog.tuple_slots.size();

  RuleLocus LocusOf(const RuleRecord& rec) const {
    RuleLocus locus;
    locus.chain = rec.chain_id >= 0 && static_cast<size_t>(rec.chain_id) < prog.chains.size()
                      ? prog.chains[static_cast<size_t>(rec.chain_id)].name
                      : std::string("(arena)");
    locus.pos = rec.chain_index + 1;
    return locus;
  }

  void Err(const RuleLocus& locus, const char* code, std::string msg) {
    report->Add(Severity::kError, code, locus, std::move(msg));
  }

  // Error at the record currently being walked (the common corruption case).
  void ErrCur(const char* code, std::string msg) {
    Err(LocusOf(*cur), code, std::move(msg));
  }

  // --- pool bound proofs ----------------------------------------------------

  bool String(uint32_t idx, const char* what) {
    if (idx >= nstrings) {
      ErrCur("pool-oob", std::string(what) + " string ref " + std::to_string(idx) +
                             " outside pool of " + std::to_string(prog.strings.size()));
      return false;
    }
    return true;
  }

  bool Operand(uint64_t idx, const char* what) {
    if (idx >= noperands) {
      ErrCur("pool-oob", std::string(what) + " operand ref " + std::to_string(idx) +
                             " outside pool of " + std::to_string(prog.operands.size()));
      return false;
    }
    return true;
  }

  bool LabelSet(uint32_t idx, const char* what) {
    if (idx >= nlabelsets) {
      ErrCur("pool-oob", std::string(what) + " labelset ref " + std::to_string(idx) +
                             " outside pool of " + std::to_string(prog.labelsets.size()));
      return false;
    }
    const LabelSetRef& ref = prog.labelsets[idx];
    if (static_cast<uint64_t>(ref.off) + ref.len > nsids) {
      ErrCur("pool-oob", std::string(what) + " labelset " + std::to_string(idx) +
                             " sid slice [" + std::to_string(ref.off) + ", " +
                             std::to_string(ref.off + ref.len) + ") outside sid pool of " +
                             std::to_string(prog.sid_pool.size()));
      return false;
    }
    return true;
  }

  // --- per-instruction proof ------------------------------------------------

  void CheckInsn(uint32_t rec_idx, const PfInsn& insn, uint32_t offset) {
    const auto op = static_cast<PfOp>(insn.op);
    if (insn.op == 0 || insn.op >= kPfOpCount) {
      ErrCur("bad-opcode", "+" + std::to_string(offset) + ": opcode " +
                               std::to_string(insn.op) + " outside [1, " +
                               std::to_string(kPfOpCount) + ")");
      return;
    }
    switch (op) {
      case PfOp::kRuleBegin:
        if (insn.a != rec_idx) {
          ErrCur("rule-malformed",
              "RULE_BEGIN names record " + std::to_string(insn.a) + ", expected " +
                  std::to_string(rec_idx));
        }
        break;
      case PfOp::kCheckOp:
        if (insn.a >= sim::kOpCount) {
          ErrCur("pool-oob", "CHECK_OP operation " + std::to_string(insn.a) +
                                 " outside the op table of " +
                                 std::to_string(sim::kOpCount));
        }
        break;
      case PfOp::kMatchSubject:
        LabelSet(insn.a, "MATCH_SUBJECT");
        break;
      case PfOp::kEnsureCtx:
        if ((insn.a & ~((1u << static_cast<uint32_t>(Ctx::kCount)) - 1)) != 0) {
          ErrCur("ctx-mask-invalid",
              "ENSURE_CTX mask " + std::to_string(insn.a) +
                  " sets bits beyond the context-module table");
        }
        break;
      case PfOp::kCheckProgram:
      case PfOp::kCheckEptOff:
      case PfOp::kCheckIno:
        break;  // immediate comparisons, nothing to dereference
      case PfOp::kMatchObject:
        LabelSet(insn.a, "MATCH_OBJECT");
        break;
      case PfOp::kMatchState:
      case PfOp::kMatchStateEq:
      case PfOp::kMatchStateNe:
        String(insn.a, "MATCH_STATE");
        if (op != PfOp::kMatchState || (insn.flags & kPfHasCmp) != 0) {
          Operand(insn.b, "MATCH_STATE --cmp");
        }
        break;
      case PfOp::kMatchSignal:
        break;
      case PfOp::kMatchPhase:
        // insn.b carries the phase id immediate; only the rendered phase
        // name dereferences a pool.
        String(insn.a, "MATCH_PHASE");
        break;
      case PfOp::kMatchSyscallArg:
      case PfOp::kMatchSyscallArgEq:
      case PfOp::kMatchSyscallArgNe:
      case PfOp::kMatchSyscallNrEq:
      case PfOp::kMatchSyscallNrNe: {
        // aux == 0 reads the syscall number; aux >= 1 indexes the request's
        // fixed argument array (AccessRequest::args, 4 slots). The Nr/Arg
        // specializations additionally pin which of the two they are.
        const bool wants_nr = op == PfOp::kMatchSyscallNrEq || op == PfOp::kMatchSyscallNrNe;
        const bool wants_arg =
            op == PfOp::kMatchSyscallArgEq || op == PfOp::kMatchSyscallArgNe;
        constexpr uint16_t kArgSlots =
            std::tuple_size_v<decltype(sim::AccessRequest::args)>;
        if (insn.aux > kArgSlots || (wants_nr && insn.aux != 0) ||
            (wants_arg && insn.aux == 0)) {
          ErrCur("syscall-arg-oob",
              "MATCH_SYSCALL_ARG --arg " + std::to_string(insn.aux) +
                  " outside the request's argument slots");
        }
        break;
      }
      case PfOp::kMatchCompare:
      case PfOp::kMatchCompareEq:
      case PfOp::kMatchCompareNe:
        Operand(insn.b, "MATCH_COMPARE --v1");
        Operand(insn.c, "MATCH_COMPARE --v2");
        break;
      case PfOp::kMatchInterp:
        String(insn.a, "MATCH_INTERP");
        break;
      case PfOp::kMatchNative:
        if (insn.a >= nmatches || prog.native_matches[insn.a] == nullptr) {
          ErrCur("native-oob", "MATCH_NATIVE index " + std::to_string(insn.a) +
                                   " outside native-match pool of " +
                                   std::to_string(prog.native_matches.size()));
        }
        break;
      case PfOp::kAccept:
      case PfOp::kDrop:
      case PfOp::kReturn:
      case PfOp::kContinue:
        break;
      case PfOp::kJump:
        // kPfNoIndex is the legal "undefined chain" form (a GOTO to a chain
        // that was never created commits today and falls through at runtime);
        // anything else must be a real chain id.
        if (insn.a != kPfNoIndex && insn.a >= nchains) {
          ErrCur("jump-target-oob", "JUMP target chain " + std::to_string(insn.a) +
                                        " outside chain table of " +
                                        std::to_string(prog.chains.size()));
        }
        String(static_cast<uint32_t>(insn.b), "JUMP name");
        break;
      case PfOp::kStateSet:
        // The STATE dictionary is the only store the instruction set has;
        // both the key and value references must be valid STATE slots.
        if (insn.a >= nstrings) {
          ErrCur("state-slot-oob", "STATE_SET key ref " + std::to_string(insn.a) +
                                       " outside string pool of " +
                                       std::to_string(prog.strings.size()));
        }
        if (insn.b >= noperands) {
          ErrCur("state-slot-oob", "STATE_SET value ref " + std::to_string(insn.b) +
                                       " outside operand pool of " +
                                       std::to_string(prog.operands.size()));
        }
        break;
      case PfOp::kStateUnset:
        if (insn.a >= nstrings) {
          ErrCur("state-slot-oob", "STATE_UNSET key ref " + std::to_string(insn.a) +
                                       " outside string pool of " +
                                       std::to_string(prog.strings.size()));
        }
        break;
      case PfOp::kLog:
        String(insn.a, "LOG prefix");
        break;
      case PfOp::kTargetNative:
        if (insn.a >= ntargets || prog.native_targets[insn.a] == nullptr) {
          ErrCur("native-oob", "TARGET_NATIVE index " + std::to_string(insn.a) +
                                   " outside native-target pool of " +
                                   std::to_string(prog.native_targets.size()));
        }
        break;
    }
  }

  // --- per-record structural proof ------------------------------------------

  void CheckRecord(uint32_t rec_idx) {
    const RuleRecord& rec = prog.rules[rec_idx];
    if (rec.rule == nullptr) {
      return;  // dead record (delta commit): unreachable from every live table
    }
    cur = &rec;
    const uint64_t arena_words = prog.arena.size();
    if (rec.entry % kPfInsnWords != 0 || (rec.end - rec.entry) % kPfInsnWords != 0) {
      ErrCur("rule-malformed", "record [" + std::to_string(rec.entry) + ", " +
                                   std::to_string(rec.end) +
                                   ") is not instruction-aligned");
      return;
    }
    if (rec.end <= rec.entry || rec.end > arena_words) {
      ErrCur("arena-truncated", "record [" + std::to_string(rec.entry) + ", " +
                                    std::to_string(rec.end) + ") outside arena of " +
                                    std::to_string(arena_words) + " words");
      return;
    }
    if (rec.body < rec.entry + kPfInsnWords || rec.body > rec.end ||
        rec.body % kPfInsnWords != 0) {
      ErrCur("rule-malformed",
          "body entry " + std::to_string(rec.body) + " outside the record");
      return;
    }
    if (static_cast<PfOp>(prog.Fetch(rec.entry).op) != PfOp::kRuleBegin) {
      ErrCur("rule-malformed", "record does not open with RULE_BEGIN");
      return;
    }
    for (uint32_t pc = rec.entry; pc < rec.end; pc += kPfInsnWords) {
      CheckInsn(rec_idx, prog.Fetch(pc), pc - rec.entry);
    }
  }

  // --- classifier proof -----------------------------------------------------
  //
  // Two properties make tuple dispatch safe to substitute for a bucket scan:
  // every slice the probe can merge is in bounds and names only live records
  // (classifier-oob), and the residual plus the tuple slices together cover
  // the bucket's `all` slice exactly once — a rule the classifier can skip
  // or double-evaluate would change verdicts and counters
  // (classifier-coverage).
  // Coverage scratch, reused across buckets so the clean path allocates
  // (and zeroes) once per run instead of building and sorting two vectors
  // per (chain, op) bucket: cover_cnt is indexed by record index and is
  // all-zero between CheckClassifier calls (reset through cover_touched).
  std::vector<int32_t> cover_cnt;
  std::vector<uint32_t> cover_touched;

  void CheckClassifier(const RuleLocus& l, const ProgramBucket& b) {
    if (!b.has_classifier) {
      return;
    }
    if (cover_cnt.size() < prog.rules.size()) {
      cover_cnt.resize(prog.rules.size(), 0);
    }
    cover_touched.clear();
    CheckClassifierSlices(l, b);
    for (const uint32_t e : cover_touched) {
      cover_cnt[e] = 0;
    }
  }

  void CheckClassifierSlices(const RuleLocus& l, const ProgramBucket& b) {
    const uint64_t num_entries = prog.entries.size();
    const uint64_t num_rules = prog.rules.size();
    bool sound = true;
    uint64_t covered_total = 0;
    auto collect = [&](uint32_t off, uint32_t len, const char* what) {
      if (static_cast<uint64_t>(off) + len > num_entries) {
        Err(l, "classifier-oob", std::string(what) + " slice [" + std::to_string(off) +
                                     ", " + std::to_string(off + len) +
                                     ") outside entry table of " +
                                     std::to_string(num_entries));
        return false;
      }
      for (uint32_t i = 0; i < len; ++i) {
        const uint32_t e = prog.entries[off + i];
        if (e >= num_rules) {
          Err(l, "classifier-oob", std::string(what) + " entry " + std::to_string(e) +
                                       " outside record table of " +
                                       std::to_string(num_rules));
          return false;
        }
        if (prog.rules[e].rule == nullptr) {
          Err(l, "classifier-oob",
              std::string(what) + " entry " + std::to_string(e) + " names a dead record");
          return false;
        }
      }
      for (uint32_t i = 0; i < len; ++i) {
        const uint32_t e = prog.entries[off + i];
        ++cover_cnt[e];
        cover_touched.push_back(e);
      }
      covered_total += len;
      return true;
    };
    sound &= collect(b.residual_off, b.residual_len, "classifier residual");
    // The evaluator's probe merges at most one slice per table plus the
    // residual into a fixed-size active array, so the table count must stay
    // within the dimension-mask limit.
    if (b.tuple_cnt > kTupleMaskLimit ||
        static_cast<uint64_t>(b.tuple_off) + b.tuple_cnt > ntuptables) {
      Err(l, "classifier-oob",
          "tuple-table slice [" + std::to_string(b.tuple_off) + ", " +
              std::to_string(b.tuple_off + b.tuple_cnt) + ") outside table pool of " +
              std::to_string(ntuptables) + " (mask limit " +
              std::to_string(kTupleMaskLimit) + ")");
      return;
    }
    for (uint32_t ti = 0; ti < b.tuple_cnt; ++ti) {
      const TupleTable& t = prog.tuple_tables[b.tuple_off + ti];
      if (t.mask == 0 || t.mask > kTupleMaskLimit || (t.mask & ~b.tuple_dims) != 0) {
        Err(l, "classifier-oob",
            "tuple table mask " + std::to_string(t.mask) +
                " invalid for bucket dimension set " + std::to_string(b.tuple_dims));
        sound = false;
        continue;
      }
      if (t.slot_count == 0 || (t.slot_count & (t.slot_count - 1)) != 0) {
        Err(l, "classifier-oob", "tuple table slot count " + std::to_string(t.slot_count) +
                                     " is not a power of two");
        sound = false;
        continue;
      }
      if (static_cast<uint64_t>(t.slot_off) + t.slot_count > ntupslots) {
        Err(l, "classifier-oob",
            "tuple slot slice [" + std::to_string(t.slot_off) + ", " +
                std::to_string(t.slot_off + t.slot_count) + ") outside slot pool of " +
                std::to_string(ntupslots));
        sound = false;
        continue;
      }
      uint32_t used = 0;
      for (uint32_t s = 0; s < t.slot_count; ++s) {
        const TupleSlot& slot = prog.tuple_slots[t.slot_off + s];
        if (slot.len == 0) {
          continue;
        }
        ++used;
        sound &= collect(slot.off, slot.len, "tuple");
      }
      if (used != t.used) {
        Err(l, "classifier-oob", "tuple table records " + std::to_string(t.used) +
                                     " occupied slots but holds " + std::to_string(used));
        sound = false;
      }
    }
    if (!sound || static_cast<uint64_t>(b.all_off) + b.all_len > num_entries) {
      return;  // slice corruption already reported; coverage is meaningless
    }
    // Multiset equality by counting: every collect above incremented its
    // entry's count, the `all` slice now decrements — residual + tuples
    // cover the bucket exactly once iff every touched count returns to zero.
    bool balanced = true;
    for (uint32_t i = 0; i < b.all_len; ++i) {
      const uint32_t e = prog.entries[b.all_off + i];
      if (e >= num_rules) {
        return;  // chain-table pass reports this entry; coverage is meaningless
      }
      --cover_cnt[e];
      cover_touched.push_back(e);
    }
    for (const uint32_t e : cover_touched) {
      if (cover_cnt[e] != 0) {
        balanced = false;
        break;
      }
    }
    if (!balanced) {
      Err(l, "classifier-coverage",
          "classifier reaches " + std::to_string(covered_total) +
              " entries but the bucket lists " + std::to_string(b.all_len) +
              "; residual + tuples must cover every rule exactly once");
    }
  }

  // --- chain dispatch-table proof -------------------------------------------

  void CheckChainTables() {
    const uint64_t num_entries = prog.entries.size();
    const uint64_t num_rules = prog.rules.size();
    // One linear pass decides whether any entry escapes the record table.
    // Each entry is referenced by several slices (op bucket, plain bucket,
    // entrypoint index), so the clean path — every commit — would otherwise
    // bounds-check it several times over; the per-slice loops below only run
    // to attribute a locus once this scan has found a culprit. A delta
    // program keeps dead entry slots around (referenced by nothing live), so
    // there the prescan is skipped and each rechecked chain's slices are
    // walked element by element instead.
    bool entries_ok = false;
    if (!opts.delta) {
      entries_ok = true;
      for (uint32_t e : prog.entries) {
        entries_ok &= e < num_rules;
      }
    }
    std::vector<bool> recheck;
    if (opts.delta) {
      recheck.assign(prog.chains.size(), false);
      for (int32_t id : opts.recheck_chains) {
        if (id >= 0 && static_cast<size_t>(id) < recheck.size()) {
          recheck[static_cast<size_t>(id)] = true;
        }
      }
    }
    for (size_t id = 0; id < prog.chains.size(); ++id) {
      if (opts.delta && !recheck[id]) {
        continue;
      }
      const ProgramChain& pc = prog.chains[id];
      RuleLocus l;
      l.chain = pc.name;
      for (uint32_t r : pc.rules) {
        if (r >= num_rules) {
          Err(l, "chain-table-oob", "chain lists rule record " + std::to_string(r) +
                                        " outside record table of " +
                                        std::to_string(prog.rules.size()));
        } else if (prog.rules[r].rule == nullptr) {
          Err(l, "chain-table-oob",
              "chain lists dead rule record " + std::to_string(r));
        }
      }
      auto slice = [&](uint32_t off, uint32_t len, const char* what) {
        if (static_cast<uint64_t>(off) + len > num_entries) {
          Err(l, "chain-table-oob", std::string(what) + " slice [" + std::to_string(off) +
                                        ", " + std::to_string(off + len) +
                                        ") outside entry table of " +
                                        std::to_string(num_entries));
          return;
        }
        if (entries_ok) {
          return;
        }
        for (uint32_t i = 0; i < len; ++i) {
          const uint32_t e = prog.entries[off + i];
          if (e >= num_rules) {
            Err(l, "chain-table-oob",
                std::string(what) + " entry " + std::to_string(e) +
                    " outside record table of " + std::to_string(prog.rules.size()));
          } else if (prog.rules[e].rule == nullptr) {
            Err(l, "chain-table-oob",
                std::string(what) + " entry " + std::to_string(e) + " names a dead record");
          }
        }
      };
      for (size_t op = 0; op < sim::kOpCount; ++op) {
        slice(pc.ops[op].all_off, pc.ops[op].all_len, "op bucket");
        slice(pc.ops[op].plain_off, pc.ops[op].plain_len, "op bucket (plain)");
        CheckClassifier(l, pc.ops[op]);
      }
      if (pc.ept) {
        for (const auto& [key, span] : *pc.ept) {
          slice(span.first, span.second, "entrypoint index");
        }
      }
    }
  }

  // --- automaton-table proof ------------------------------------------------
  //
  // Substituting a cached (VerdictKey + automaton state) verdict for a
  // traversal is only sound if the tables that fold the state are themselves
  // well-formed. Three properties are proved per protocol: every slice is in
  // bounds (automaton-oob), the encoding is total and consistent — each key's
  // radix is exactly value_cnt + 2 (absent / each literal / other), strides
  // are the running radix product, and the product equals state_count
  // (automaton-malformed) — and no two digits alias one literal, which would
  // make the fold ambiguous (automaton-unsound). A radix strictly above
  // value_cnt + 2 encodes digits no dictionary can ever produce; those states
  // are dead, a space bug rather than a soundness bug (automaton-dead,
  // warning). Bucket classifications are then checked: a state-cacheable
  // bucket may only cite real protocols, and every JUMP edge's target bucket
  // must be subsumed by the closure (causes and protocols), else Authorize
  // would serve a cached verdict whose key misses state the jump target
  // reads.
  void CheckAutomata() {
    const uint64_t nkeys = prog.automaton_keys.size();
    const uint64_t nvalues = prog.automaton_values.size();
    RuleLocus l;
    l.chain = "(automata)";
    for (size_t p = 0; p < prog.automaton_protocols.size(); ++p) {
      const AutomatonProtocol& proto = prog.automaton_protocols[p];
      const std::string pname = "protocol " + std::to_string(p);
      if (proto.key_cnt == 0) {
        Err(l, "automaton-malformed", pname + " has no keys");
        continue;
      }
      if (static_cast<uint64_t>(proto.key_off) + proto.key_cnt > nkeys) {
        Err(l, "automaton-oob",
            pname + " key slice [" + std::to_string(proto.key_off) + ", " +
                std::to_string(proto.key_off + proto.key_cnt) +
                ") outside key pool of " + std::to_string(nkeys));
        continue;
      }
      uint64_t product = 1;
      bool consistent = true;
      for (uint32_t k = 0; k < proto.key_cnt; ++k) {
        const AutomatonKey& ak = prog.automaton_keys[proto.key_off + k];
        const std::string kname = pname + " key " + std::to_string(k);
        if (ak.name >= nstrings) {
          Err(l, "automaton-oob", kname + " name ref " + std::to_string(ak.name) +
                                      " outside string pool of " +
                                      std::to_string(prog.strings.size()));
          consistent = false;
          continue;
        }
        if (static_cast<uint64_t>(ak.value_off) + ak.value_cnt > nvalues) {
          Err(l, "automaton-oob",
              kname + " value slice [" + std::to_string(ak.value_off) + ", " +
                  std::to_string(ak.value_off + ak.value_cnt) +
                  ") outside value pool of " + std::to_string(nvalues));
          consistent = false;
          continue;
        }
        if (ak.value_cnt > kMaxAutomatonValues) {
          Err(l, "automaton-malformed",
              kname + " carries " + std::to_string(ak.value_cnt) +
                  " literals, above the domain cap of " +
                  std::to_string(kMaxAutomatonValues));
          consistent = false;
        }
        if (ak.radix < ak.value_cnt + 2) {
          Err(l, "automaton-malformed",
              kname + " radix " + std::to_string(ak.radix) +
                  " cannot encode absent + " + std::to_string(ak.value_cnt) +
                  " literals + other; the transition function is not total");
          consistent = false;
        } else if (ak.radix > ak.value_cnt + 2) {
          report->Add(Severity::kWarning, "automaton-dead", l,
                      kname + " radix " + std::to_string(ak.radix) + " exceeds " +
                          std::to_string(ak.value_cnt + 2) +
                          "; the surplus digits name states no dictionary can reach");
        }
        for (uint32_t v = 1; v < ak.value_cnt; ++v) {
          const int64_t prev = prog.automaton_values[ak.value_off + v - 1];
          const int64_t curr = prog.automaton_values[ak.value_off + v];
          if (prev >= curr) {
            Err(l, "automaton-unsound",
                kname + " literal domain is not strictly ascending at slot " +
                    std::to_string(v) + "; duplicate digits make the fold ambiguous");
            consistent = false;
            break;
          }
        }
        if (ak.stride != product) {
          Err(l, "automaton-malformed",
              kname + " stride " + std::to_string(ak.stride) +
                  " differs from the running radix product " + std::to_string(product));
          consistent = false;
        }
        product *= ak.radix;
      }
      if (consistent && product != proto.state_count) {
        Err(l, "automaton-malformed",
            pname + " records " + std::to_string(proto.state_count) +
                " states but the radix product is " + std::to_string(product));
      }
      if (proto.state_count > kMaxAutomatonStates) {
        Err(l, "automaton-malformed",
            pname + " state count " + std::to_string(proto.state_count) +
                " exceeds the cap of " + std::to_string(kMaxAutomatonStates));
      }
    }
    // Bucket classification proof.
    const size_t nprotocols = prog.automaton_protocols.size();
    for (const ProgramChain& pc : prog.chains) {
      RuleLocus cl;
      cl.chain = pc.name;
      for (size_t op = 0; op < sim::kOpCount; ++op) {
        const ProgramBucket& b = pc.ops[op];
        if (b.astate.causes == 0) {
          for (size_t i = 0; i < b.astate.protocols.size(); ++i) {
            if (b.astate.protocols[i] >= nprotocols) {
              Err(cl, "automaton-unsound",
                  "state-cacheable bucket cites protocol " +
                      std::to_string(b.astate.protocols[i]) + " outside table of " +
                      std::to_string(nprotocols));
            }
            if (i > 0 && b.astate.protocols[i - 1] >= b.astate.protocols[i]) {
              Err(cl, "automaton-unsound",
                  "bucket protocol list is not sorted-unique");
            }
          }
        }
        for (int32_t jid : b.astate_jumps) {
          if (jid < 0 || static_cast<uint64_t>(jid) >= nchains) {
            continue;  // unresolved jump: closure already treats it as bypass
          }
          const ProgramBucket& t = prog.chains[static_cast<size_t>(jid)].ops[op];
          if ((t.astate.causes & ~b.astate.causes) != 0) {
            Err(cl, "automaton-unsound",
                "JUMP edge to " + prog.chains[static_cast<size_t>(jid)].name +
                    " carries bypass causes the source bucket's closure misses");
          }
          if (b.astate.causes == 0 &&
              !std::includes(b.astate.protocols.begin(), b.astate.protocols.end(),
                             t.astate.protocols.begin(), t.astate.protocols.end())) {
            Err(cl, "automaton-unsound",
                "JUMP edge to " + prog.chains[static_cast<size_t>(jid)].name +
                    " reads protocols the source bucket's key would not fold");
          }
        }
      }
    }
  }

  // --- depth proof ----------------------------------------------------------
  //
  // BFS over resolved JUMP edges from the builtin roots gives each chain its
  // minimum entry depth; the evaluator's guard never runs a chain entered at
  // depth >= kMaxChainDepth, so a chain whose *minimum* depth breaks the
  // bound is provably dead (every path to it is cut off). The runtime is
  // safe either way — this is a reachability property, hence a warning
  // unless strict_depth.
  void CheckDepth() {
    const size_t n = prog.chains.size();
    std::vector<int> min_depth(n, -1);
    std::deque<size_t> queue;
    for (int32_t root :
         {prog.root_input, prog.root_output, prog.root_create, prog.root_syscallbegin}) {
      if (root >= 0 && static_cast<size_t>(root) < n && min_depth[static_cast<size_t>(root)] < 0) {
        min_depth[static_cast<size_t>(root)] = 0;
        queue.push_back(static_cast<size_t>(root));
      }
    }
    while (!queue.empty()) {
      const size_t id = queue.front();
      queue.pop_front();
      const int next_depth = min_depth[id] + 1;
      if (next_depth >= kMaxChainDepth) {
        continue;  // the runtime guard cuts deeper entries off
      }
      for (uint32_t r : prog.chains[id].rules) {
        if (r >= prog.rules.size()) {
          continue;  // already reported by CheckChainTables
        }
        const int32_t target = prog.rules[r].jump_chain;
        if (target >= 0 && static_cast<size_t>(target) < n &&
            min_depth[static_cast<size_t>(target)] < 0) {
          min_depth[static_cast<size_t>(target)] = next_depth;
          queue.push_back(static_cast<size_t>(target));
        }
      }
    }
    // Chains that are jumped to but whose every entry path exceeds the bound.
    // Chains nothing references at all are a style question (the analyzer's
    // jump-graph pass covers them), not a depth finding.
    std::vector<bool> referenced(n, false);
    for (const RuleRecord& rec : prog.rules) {
      if (rec.rule == nullptr) {
        continue;  // dead record: its JUMP edge left the program
      }
      if (rec.jump_chain >= 0 && static_cast<size_t>(rec.jump_chain) < n) {
        referenced[static_cast<size_t>(rec.jump_chain)] = true;
      }
    }
    for (size_t id = 0; id < n; ++id) {
      if (min_depth[id] < 0 && referenced[id]) {
        RuleLocus l;
        l.chain = prog.chains[id].name;
        report->Add(opts.strict_depth ? Severity::kError : Severity::kWarning,
                    "depth-exceeded", l,
                    "chain is only reachable beyond the JUMP depth bound of " +
                        std::to_string(kMaxChainDepth) +
                        "; the evaluator will never run it");
      }
    }
  }
};

}  // namespace

VerifyResult VerifyProgram(const PfProgram& prog, const VerifyOptions& opts) {
  VerifyResult result;
  Verifier v{prog, opts, &result.report};
  if (prog.arena.size() % kPfInsnWords != 0) {
    RuleLocus l;
    l.chain = "(arena)";
    v.Err(l, "arena-truncated",
          "arena of " + std::to_string(prog.arena.size()) +
              " words is not a whole number of instructions");
  }
  // A delta program's prefix is byte-identical to an already-verified base;
  // only the appended records need the per-record walk.
  for (uint32_t i = opts.delta ? opts.from_record : 0; i < prog.rules.size(); ++i) {
    v.CheckRecord(i);
  }
  v.CheckChainTables();
  if (prog.automata_built) {
    v.CheckAutomata();  // pools are rebuilt whole even on delta commits
  }
  v.CheckDepth();
  result.report.Sort();
  return result;
}

}  // namespace pf::core
