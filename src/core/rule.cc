#include "src/core/rule.h"

#include <sstream>

namespace pf::core {

bool LabelSet::InSet(sim::Sid sid) const {
  for (sim::Sid s : sids) {
    if (s == sid) {
      return true;
    }
  }
  return false;
}

bool LabelSet::MatchesSubject(sim::Sid sid, const sim::MacPolicy& policy) const {
  if (wildcard) {
    return true;
  }
  bool in = InSet(sid) || (syshigh && policy.IsSyshighSubject(sid));
  return negate ? !in : in;
}

bool LabelSet::MatchesObject(sim::Sid sid, const sim::MacPolicy& policy) const {
  if (wildcard) {
    return true;
  }
  bool in = InSet(sid) || (syshigh && policy.IsSyshighObject(sid));
  return negate ? !in : in;
}

std::string LabelSet::Render(const sim::LabelRegistry& labels) const {
  if (wildcard) {
    return "*";
  }
  std::ostringstream oss;
  if (negate) {
    oss << "~";
  }
  bool braces = sids.size() + (syshigh ? 1 : 0) != 1;
  if (braces) {
    oss << "{";
  }
  bool first = true;
  if (syshigh) {
    oss << "SYSHIGH";
    first = false;
  }
  for (sim::Sid s : sids) {
    if (!first) {
      oss << "|";
    }
    oss << labels.Name(s);
    first = false;
  }
  if (braces) {
    oss << "}";
  }
  return oss.str();
}

}  // namespace pf::core
