// Built-in match and target modules (the -m / -j extensions).
//
// Mirrors the paper's module set: STATE (stateful key/value match and set,
// used for TOCTTOU and signal-race rules R5/R6/R9-R12), SIGNAL_MATCH,
// SYSCALL_ARGS, COMPARE (owner comparisons, R8), LOG (rule generation), and
// the verdict targets ACCEPT/DROP/RETURN plus user-chain jumps. INTERP is an
// extension matching interpreter backtraces directly.
#ifndef SRC_CORE_MODULES_H_
#define SRC_CORE_MODULES_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "src/core/rule.h"
#include "src/core/status.h"

namespace pf::core {

// Temporal phases (DESIGN.md §5i, after SYSPART's execve-milestone model):
// a task's lifecycle phase is a reserved STATE dictionary key, entered by
// -j PHASE --enter NAME (an execve-milestone rule swaps the active rule
// subset by entering "serving") and tested by -m PHASE --is NAME. Phase
// names are stored as stable 63-bit FNV-1a ids so phase guards lower to
// literal-compare instructions the automaton pass can prove digit-pure.
inline constexpr std::string_view kPhaseKeyName = "@phase";
// The phase every task is in until a PHASE target fires: the "@phase" key
// is simply absent, and every phase guard treats absent as this name.
inline constexpr std::string_view kPhaseInitName = "init";

constexpr int64_t PhaseId(std::string_view name) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a 64
  for (char c : name) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return static_cast<int64_t>(h & 0x7fffffffffffffffull);
}

// An argument that is either a literal integer or a context variable.
struct Operand {
  bool is_var = false;
  CtxVar var = CtxVar::kIno;
  int64_t literal = 0;

  static std::optional<Operand> Parse(const std::string& token);
  std::optional<int64_t> Eval(const Packet& pkt) const;
  CtxMask Needs() const;
  // Whether the operand's value is determined by the engine's verdict-cache
  // key: literals and the object-identity variables (C_INO, C_GEN, C_DEV,
  // C_SID). Owner uids (chown does not move any key component), symlink
  // targets (re-resolved per access), and process/syscall/signal variables
  // are not covered.
  bool CoveredByVerdictKey() const;
  std::string Render() const;
};

// -m STATE --key K [--cmp V] [--equal|--nequal]
// Matches when the per-process dictionary holds K and its value compares to
// V (default: any value present).
class StateMatch : public MatchModule {
 public:
  static Status Create(const std::vector<std::string>& opts,
                       std::unique_ptr<MatchModule>* out);
  std::string_view Name() const override { return "STATE"; }
  CtxMask Needs() const override;
  bool Matches(Packet& pkt, Engine& engine) const override;
  bool Lower(ProgramBuilder& b) const override;
  bool Symbolize(SymbolicSink& sink) const override;
  std::string Render() const override;

  std::string key;
  std::optional<Operand> cmp;
  bool negate = false;
};

// -m SIGNAL_MATCH: the delivery is of a handled, blockable signal.
class SignalMatch : public MatchModule {
 public:
  static Status Create(const std::vector<std::string>& opts,
                       std::unique_ptr<MatchModule>* out);
  std::string_view Name() const override { return "SIGNAL_MATCH"; }
  bool Matches(Packet& pkt, Engine& engine) const override;
  bool Lower(ProgramBuilder& b) const override;
  bool Symbolize(SymbolicSink& sink) const override;
  std::string Render() const override;
};

// -m SYSCALL_ARGS --arg N --equal V
// Arg 0 is the system call number; args 1..4 are its arguments.
class SyscallArgsMatch : public MatchModule {
 public:
  static Status Create(const std::vector<std::string>& opts,
                       std::unique_ptr<MatchModule>* out);
  std::string_view Name() const override { return "SYSCALL_ARGS"; }
  bool Matches(Packet& pkt, Engine& engine) const override;
  bool Lower(ProgramBuilder& b) const override;
  bool Symbolize(SymbolicSink& sink) const override;
  std::string Render() const override;

  int arg = 0;
  int64_t value = 0;
  bool negate = false;
};

// -m COMPARE --v1 A --v2 B [--equal|--nequal]
class CompareMatch : public MatchModule {
 public:
  static Status Create(const std::vector<std::string>& opts,
                       std::unique_ptr<MatchModule>* out);
  std::string_view Name() const override { return "COMPARE"; }
  CtxMask Needs() const override { return v1.Needs() | v2.Needs(); }
  bool CacheableByKey() const override {
    return v1.CoveredByVerdictKey() && v2.CoveredByVerdictKey();
  }
  bool Matches(Packet& pkt, Engine& engine) const override;
  bool Lower(ProgramBuilder& b) const override;
  bool Symbolize(SymbolicSink& sink) const override;
  std::string Render() const override;

  Operand v1;
  Operand v2;
  bool negate = false;
};

// -m INTERP --script SUFFIX [--lang php|python|bash] (extension): matches
// when the innermost interpreter frame runs the given script.
class InterpMatch : public MatchModule {
 public:
  static Status Create(const std::vector<std::string>& opts,
                       std::unique_ptr<MatchModule>* out);
  std::string_view Name() const override { return "INTERP"; }
  CtxMask Needs() const override { return CtxBit(Ctx::kInterpStack); }
  bool Matches(Packet& pkt, Engine& engine) const override;
  // A shorter suffix accepts every script a longer one does (and --lang
  // unset accepts every language), so INTERP matches form a partial order
  // the shadowing analysis can exploit.
  bool Subsumes(const MatchModule& other) const override;
  bool Lower(ProgramBuilder& b) const override;
  bool Symbolize(SymbolicSink& sink) const override;
  std::string Render() const override;

  std::string script_suffix;
  std::optional<sim::InterpLang> lang;
};

// -m PHASE --is NAME [--nequal]: matches when the task's current temporal
// phase (the reserved "@phase" STATE key; absent = init) equals NAME.
class PhaseMatch : public MatchModule {
 public:
  static Status Create(const std::vector<std::string>& opts,
                       std::unique_ptr<MatchModule>* out);
  std::string_view Name() const override { return "PHASE"; }
  bool Matches(Packet& pkt, Engine& engine) const override;
  bool Lower(ProgramBuilder& b) const override;
  bool Symbolize(SymbolicSink& sink) const override;
  std::string Render() const override;

  std::string phase;
  bool negate = false;
};

// --- targets ---

class VerdictTarget : public TargetModule {
 public:
  explicit VerdictTarget(TargetKind kind) : kind_(kind) {}
  std::string_view Name() const override;
  bool CacheableByKey() const override { return true; }  // pure verdict
  std::optional<TargetKind> StaticKind() const override { return kind_; }
  bool Lower(ProgramBuilder& b) const override;
  TargetKind Fire(Packet& pkt, Engine& engine) const override;
  std::string Render() const override { return std::string(Name()); }

 private:
  TargetKind kind_;
};

class JumpTarget : public TargetModule {
 public:
  explicit JumpTarget(std::string chain) : chain_(std::move(chain)) {}
  std::string_view Name() const override { return "JUMP"; }
  // The jump itself is pure; the reachable chain's purity is folded in by
  // the commit-time transitive closure.
  bool CacheableByKey() const override { return true; }
  std::optional<TargetKind> StaticKind() const override { return TargetKind::kJump; }
  bool Lower(ProgramBuilder& b) const override;
  TargetKind Fire(Packet&, Engine&) const override { return TargetKind::kJump; }
  const std::string& jump_chain() const override { return chain_; }
  std::string Render() const override { return chain_; }

 private:
  std::string chain_;
};

// -j STATE --set --key K --value V : writes into the per-process dictionary
// and continues traversal.
class StateTarget : public TargetModule {
 public:
  static Status Create(const std::vector<std::string>& opts,
                       std::unique_ptr<TargetModule>* out);
  std::string_view Name() const override { return "STATE"; }
  CtxMask Needs() const override { return value.Needs(); }
  std::optional<TargetKind> StaticKind() const override { return TargetKind::kContinue; }
  bool Lower(ProgramBuilder& b) const override;
  TargetKind Fire(Packet& pkt, Engine& engine) const override;
  std::string Render() const override;

  std::string key;
  Operand value;
  bool unset = false;
};

// -j PHASE --enter NAME: moves the task into temporal phase NAME (a literal
// write of PhaseId(NAME) to the reserved "@phase" STATE key) and continues
// traversal. An execve-milestone rule (-o FILE_EXEC -j PHASE --enter
// serving) atomically swaps which PHASE-guarded rules apply from then on.
class PhaseTarget : public TargetModule {
 public:
  static Status Create(const std::vector<std::string>& opts,
                       std::unique_ptr<TargetModule>* out);
  std::string_view Name() const override { return "PHASE"; }
  std::optional<TargetKind> StaticKind() const override { return TargetKind::kContinue; }
  bool Lower(ProgramBuilder& b) const override;
  TargetKind Fire(Packet& pkt, Engine& engine) const override;
  std::string Render() const override;

  std::string phase;
};

// -j LOG [--prefix P]: records the access (rule-generation input) and
// continues traversal.
class LogTarget : public TargetModule {
 public:
  static Status Create(const std::vector<std::string>& opts,
                       std::unique_ptr<TargetModule>* out);
  std::string_view Name() const override { return "LOG"; }
  // Logs include entrypoint and adversary context.
  CtxMask Needs() const override {
    return CtxBit(Ctx::kObject) | CtxBit(Ctx::kAdversaryAccess) | CtxBit(Ctx::kEntrypoint);
  }
  std::optional<TargetKind> StaticKind() const override { return TargetKind::kContinue; }
  bool Lower(ProgramBuilder& b) const override;
  TargetKind Fire(Packet& pkt, Engine& engine) const override;
  std::string Render() const override;

  std::string prefix;
};

}  // namespace pf::core

#endif  // SRC_CORE_MODULES_H_
