// Compiled PF programs: the flat, arena-packed form of a committed rule
// base (DESIGN.md §"Compiled PF programs").
//
// iptables' kernel hot path walks a contiguous ipt_entry blob, not a pointer
// graph. This module gives the Process Firewall the same shape: at commit
// time every filter-table chain is *lowered* into a single relocatable arena
// of fixed-size instruction records — default matches and builtin -m modules
// become inline-operand match ops, verdicts become terminal ops, JUMP edges
// become chain ids resolved at lowering, and stateful/extension modules
// become escape ops that call back into the module object. Strings and
// LabelSets are interned into side pools so an instruction is 24 bytes of
// plain integers. The engine's hot path then runs a tight switch-dispatch
// loop over the arena (no virtual calls, no shared_ptr traffic); the
// analyzer and `pftables -L --compiled` consume the same artifact, so what
// is analyzed, printed, and executed can never disagree.
//
// Alignment / aliasing: the arena is a vector of uint64_t words and every
// instruction is an alignas(8) trivially-copyable 3-word record accessed
// through memcpy views (PfProgram::Fetch / ProgramBuilder::Emit) — no
// reinterpret_cast, no unaligned loads, UBSan-clean by construction.
#ifndef SRC_CORE_PROGRAM_H_
#define SRC_CORE_PROGRAM_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "src/core/modules.h"
#include "src/core/ruleset.h"

namespace pf::core {

// Instruction opcodes. Guard ops fall through on success and end the rule
// (no match) on failure; terminal ops produce the rule's verdict. The
// k*Native ops are the escape hatch for extension modules registered via
// Pftables::RegisterMatch/RegisterTarget: they dispatch virtually into the
// module object held in the program's native pools.
enum class PfOp : uint8_t {
  kRuleBegin = 1,   // a = rule-record index (bumps eval counters)
  kCheckOp,         // a = sim::Op the rule's -o pins
  kMatchSubject,    // a = labelset pool index (-s)
  kEnsureCtx,       // a = CtxMask to collect (the rule's install-time needs)
  // The entrypoint/object checks are self-guarding: each ensures its context
  // bit (a short-circuit after kEnsureCtx) and fails the rule when the
  // request lacks a valid frame / an object, before comparing.
  kCheckProgram,    // b = image dev, c = image ino (-p)
  kCheckEptOff,     // b = binary-relative PC (-i)
  kCheckIno,        // b = inode number (--ino)
  kMatchObject,     // a = labelset pool index (-d)
  kMatchState,      // a = key string idx, b = cmp operand idx (kFlagHasCmp)
  kMatchSignal,     // SIGNAL_MATCH (no operands)
  kMatchSyscallArg, // aux = arg index, b = value (as uint64)
  kMatchCompare,    // b = operand idx v1, c = operand idx v2
  kMatchInterp,     // a = suffix string idx, aux = lang + 1 (0 = any)
  kMatchNative,     // a = native-match pool index (virtual escape)
  kAccept,          // terminal verdicts --------------------------------
  kDrop,
  kReturn,
  kContinue,        // side-effect-free CONTINUE (keep traversing)
  kJump,            // a = chain id (kPfNoIndex: undefined), b = name idx
  kStateSet,        // a = key string idx, b = value operand idx
  kStateUnset,      // a = key string idx
  kLog,             // a = prefix string idx
  kTargetNative,    // a = native-target pool index (virtual escape)
  // Compile-time-specialized forms, appended so the base opcodes keep their
  // numbering. Lowering resolves the operand-kind and comparison-sense
  // branches of the generic ops above at compile time (the --cmp / --nequal
  // flags, the arg-0-means-syscall-nr convention), so the threaded hot loop
  // dispatches straight to a handler with no per-insn flag tests. The
  // generic forms stay executable (hand-built programs, older dumps) and
  // every specialized form disassembles to the same text as its generic
  // twin — listings are invariant under specialization.
  kMatchStateEq,      // kMatchState + kPfHasCmp, equal sense
  kMatchStateNe,      // kMatchState + kPfHasCmp + kPfNegate
  kMatchSyscallNrEq,  // kMatchSyscallArg with aux == 0 (the syscall number)
  kMatchSyscallNrNe,
  kMatchSyscallArgEq,  // kMatchSyscallArg with aux >= 1 (argument aux - 1)
  kMatchSyscallArgNe,
  kMatchCompareEq,  // kMatchCompare, equal sense
  kMatchCompareNe,  // kMatchCompare + kPfNegate
  // Temporal-phase guard (PHASE match, DESIGN.md §5i): compares the task's
  // current phase — STATE dictionary key "@phase", or the distinguished
  // "init" phase while the key is absent — against a phase-name id.
  kMatchPhase,  // a = phase-name string idx, b = phase id (PhaseId(name))
};

// One past the highest opcode: the size of the evaluator's dispatch table
// and the bound the load-time verifier proves every fetched op against.
inline constexpr uint32_t kPfOpCount = static_cast<uint32_t>(PfOp::kMatchPhase) + 1;

// Instruction flags.
inline constexpr uint8_t kPfNegate = 1u << 0;  // --nequal / negated compare
inline constexpr uint8_t kPfHasCmp = 1u << 1;  // STATE match carries --cmp

// Sentinel for "no pool entry / unresolved chain".
inline constexpr uint32_t kPfNoIndex = 0xffffffffu;

// One fixed-size instruction: 24 bytes, three arena words. A trivial type
// (construct with `PfInsn{}` for zeroed fields) so it can be memcpy'd in
// and out of the word arena without tripping -Wclass-memaccess.
struct alignas(8) PfInsn {
  uint8_t op;
  uint8_t flags;
  uint16_t aux;
  uint32_t a;
  uint64_t b;
  uint64_t c;
};
static_assert(sizeof(PfInsn) == 24, "PfInsn must stay three arena words");
static_assert(alignof(PfInsn) == 8, "PfInsn records are word-aligned");
static_assert(std::is_trivial_v<PfInsn> && std::is_trivially_copyable_v<PfInsn>,
              "memcpy views require it");

inline constexpr uint32_t kPfInsnWords =
    static_cast<uint32_t>(sizeof(PfInsn) / sizeof(uint64_t));

// An interned LabelSet: a slice of the shared sid pool plus the three
// modifier bits. Match semantics mirror LabelSet exactly (rule.cc).
struct alignas(8) LabelSetRef {
  uint32_t off = 0;  // into PfProgram::sid_pool
  uint32_t len = 0;
  uint8_t syshigh = 0;
  uint8_t negate = 0;
  uint8_t wildcard = 0;
};

// Per-rule metadata: where the rule's instructions live in the arena plus
// the side-table links the analyzer and the stats counters need. `rule`
// points into the Rule objects shared with the owning CompiledRuleset, so a
// record is valid exactly as long as its program.
// Why a rule (and therefore any bucket that can reach it) cannot be served
// through the stateful verdict-cache tier (DESIGN.md §5i). One bit per
// cause so the engine's bypass counters and `pftables -L -v` can attribute
// the residual bypass share after automaton lowering.
inline constexpr uint8_t kBypassState = 1u << 0;        // unlowerable STATE op
inline constexpr uint8_t kBypassSyscallArgs = 1u << 1;  // arg >= 1 guard
inline constexpr uint8_t kBypassLog = 1u << 2;          // LOG side effect
inline constexpr uint8_t kBypassInterp = 1u << 3;       // interpreter stack
inline constexpr uint8_t kBypassCompare = 1u << 4;      // un-keyed COMPARE vars
inline constexpr uint8_t kBypassNative = 1u << 5;       // opaque native module
inline constexpr size_t kBypassCauseCount = 6;

const char* BypassCauseName(uint8_t bit);  // automata.cc
std::string RenderBypassCauses(uint8_t causes);

// RuleRecord::astate_flags — the pool-independent half of a record's
// automaton classification, written by the same scan that collects the
// chain's STATE facts so classification never re-reads the instruction
// stream of a record that touches no state (the common case).
inline constexpr uint8_t kAstateScanned = 1u << 0;   // raw scan happened
inline constexpr uint8_t kAstateNrInKey = 1u << 1;   // syscall-nr guard
inline constexpr uint8_t kAstateSigInKey = 1u << 2;  // signal-bit guard
inline constexpr uint8_t kAstateHasState = 1u << 3;  // has STATE/PHASE ops

struct RuleRecord {
  uint32_t entry = 0;  // arena word offset of kRuleBegin
  uint32_t end = 0;    // one past the rule's last word
  // Evaluator fast entry: past kRuleBegin (whose counter bumps the evaluator
  // prologue performs) and past any kCheckOp guard, which is true by
  // construction for rules reached through a per-op bucket. Entrypoint-index
  // lists are NOT op-filtered and must enter at entry + kPfInsnWords instead.
  uint32_t body = 0;
  uint32_t jump_name = kPfNoIndex;  // string idx of the declared JUMP target
  int32_t jump_chain = -1;          // resolved chain id (-1: none/undefined)
  // Owning chain and position within it, filled during lowering. This is the
  // (chain, rule) attribution the tracepoints put in TraceRecords and
  // `pftables -L -v` prints — the evaluator itself never reads them.
  int32_t chain_id = -1;
  uint32_t chain_index = 0;
  std::optional<TargetKind> static_kind;  // terminal kind, when static
  const Rule* rule = nullptr;
  // Automaton lowering annotation (BuildAutomata): why this rule keeps a
  // stateful decision on the bypass path (0 = pure or automaton-lowered),
  // and the STATE protocol its keys belong to (-1 = touches no state).
  // `pftables -L -v` and pfcheck's JSON automata block render these.
  // `astate_flags` (kAstate*) caches the pool-independent scan results so
  // reclassification against new pools only rescans records with STATE ops.
  uint8_t astate_causes = 0;
  uint8_t astate_flags = 0;
  int16_t astate_protocol = -1;
};

// Tuple-space classifier (DESIGN.md §5g). At lowering time every rule in a
// per-(chain,op) bucket is assigned the set of *exact-match* dimensions its
// guards pin to a single value: a one-sid positive subject set, a resolved
// entrypoint (-p + -i), a one-sid positive object set, an --ino. Rules that
// share a dimension mask are grouped by their key values into tuples —
// contiguous, chain-ordered slices of the entries table — and each mask gets
// an open-addressed hash table from key to slice. Authorize then probes one
// table per distinct mask (a handful) instead of scanning the bucket, and
// merges the few surviving slices back into chain order; a rule whose exact
// key differs from the request's could only have failed its guards, so
// skipping it is verdict- and counter-invariant.
inline constexpr uint8_t kTupleDimSubject = 1u << 0;  // -s, single positive sid
inline constexpr uint8_t kTupleDimEpt = 1u << 1;      // -p + -i (entrypoint)
inline constexpr uint8_t kTupleDimObject = 1u << 2;   // -d, single positive sid
inline constexpr uint8_t kTupleDimIno = 1u << 3;      // --ino
// Distinct non-empty dimension masks; bounds the per-probe table count and
// the merge fan-in.
inline constexpr uint32_t kTupleMaskLimit = 15;

// Full-width key: only the dimensions named by the owning table's mask are
// compared (the rest stay zero for determinism).
struct TupleKey {
  sim::Sid subject = 0;
  sim::Sid object = 0;
  uint64_t ept_dev = 0;
  uint64_t ept_ino = 0;
  uint64_t ept_off = 0;
  uint64_t ino = 0;
};

uint64_t TupleKeyHash(uint8_t mask, const TupleKey& key);
bool TupleKeyEq(uint8_t mask, const TupleKey& lhs, const TupleKey& rhs);

// One occupied (or empty, len == 0) slot of a tuple hash table: key -> a
// chain-ordered slice of PfProgram::entries.
struct TupleSlot {
  TupleKey key;
  uint32_t off = 0;
  uint32_t len = 0;  // 0 = empty slot
};

// Open-addressed (linear probing) table for one dimension mask; slots live
// in PfProgram::tuple_slots, slot_count is a power of two.
struct TupleTable {
  uint8_t mask = 0;
  uint32_t slot_off = 0;
  uint32_t slot_count = 0;
  uint32_t used = 0;  // occupied slots (tuples)
};

// ---------------------------------------------------------------------------
// STATE-protocol automata (DESIGN.md §5i). BuildAutomata (automata.cc) groups
// the program's STATE keys into protocols (connected components of keys that
// co-occur in a rule) and compiles each into a mixed-radix DFA over per-key
// abstract domains: digit 0 = key absent, digits 1..n = the n literal values
// any rule in the program compares or stores, digit n+1 = present with some
// other value. The product of a protocol's key digits is the task's current
// automaton state — a pure function of the STATE dictionary — and joining it
// to the VerdictKey makes previously-bypassing stateful decisions cacheable:
// a cached entry replays the recorded literal dictionary writes (advancing
// the automaton) and per-rule hit counters bit-identically to a traversal.

// Per-key domain caps. A key with more distinct literals, or a protocol
// whose digit product overflows, keeps its rules on the bypass path
// (cause kBypassState) instead of lowering unsoundly.
inline constexpr uint32_t kMaxAutomatonValues = 14;
inline constexpr uint32_t kMaxAutomatonStates = 1u << 16;

// One STATE key of a protocol: its interned name, the sorted unique literal
// slice in PfProgram::automaton_values, and its mixed-radix weight.
struct AutomatonKey {
  uint32_t name = 0;       // string pool idx
  uint32_t value_off = 0;  // slice of automaton_values (sorted, unique)
  uint32_t value_cnt = 0;
  uint32_t radix = 0;   // value_cnt + 2: absent / each literal / other
  uint32_t stride = 0;  // product of the protocol's preceding radices
  uint8_t phase = 0;    // "@phase" key: absent digit means the init phase
};

// One protocol: a key slice of PfProgram::automaton_keys (name-sorted) and
// the total state count (the product of the key radices — every digit vector
// maps to exactly one state, so the transition function is total).
struct AutomatonProtocol {
  uint32_t key_off = 0;  // slice of automaton_keys
  uint32_t key_cnt = 0;
  uint32_t state_count = 0;
  uint8_t phase = 0;  // distinguished temporal-phase automaton
};

// Automaton classification of one (chain, op) bucket: the causes that keep
// it off the stateful cache tier (0 = every reachable rule is pure or
// automaton-lowered), which extra request fields must join the VerdictKey,
// and the sorted protocol ids whose state the bucket's rules read or write.
// All three are transitively closed over JUMP edges, mirroring OpBucket's
// purity closure.
struct BucketAutomata {
  uint8_t causes = 0;
  bool nr_in_key = false;   // syscall-number guard: req.syscall_nr joins key
  bool sig_in_key = false;  // SIGNAL_MATCH guard: handler bit joins key
  std::vector<uint16_t> protocols;
  bool operator==(const BucketAutomata&) const = default;
};

// Per-chain STATE facts, cached on ProgramChain so a delta commit can prove
// the automaton pools unchanged without rescanning clean chains: the key
// groups each state-touching rule co-occurs (protocol edges) and the literal
// domain each key contributes. Compared by value across generations.
struct ChainStateFacts {
  std::vector<std::vector<std::string>> rule_keys;
  std::map<std::string, std::vector<int64_t>> domains;
  bool operator==(const ChainStateFacts&) const = default;
};

// Per-(chain, op) dispatch bucket, the program-form twin of OpBucket
// (engine.h) with the rule pointers re-pointed at entry-table slices.
struct ProgramBucket {
  uint32_t all_off = 0;    // slice of PfProgram::entries: every rule that
  uint32_t all_len = 0;    //   can match the op, in chain order
  uint32_t plain_off = 0;  // the non-entrypoint-indexed subset
  uint32_t plain_len = 0;
  CtxMask needs = 0;
  bool cacheable = true;
  bool has_indexed = false;
  // Tuple-space classifier over the `all` slice: `residual` holds the rules
  // with no exact dimension (always evaluated), `tuple_off/cnt` the per-mask
  // hash tables in PfProgram::tuple_tables, `tuple_dims` the union of their
  // masks (which contexts a probe must resolve up front).
  uint32_t residual_off = 0;
  uint32_t residual_len = 0;
  uint32_t tuple_off = 0;
  uint32_t tuple_cnt = 0;
  uint8_t tuple_dims = 0;
  bool has_classifier = false;
  // Automaton classification (valid when PfProgram::automata_built):
  // `astate_base` from the bucket's own rules, `astate` after the JUMP-edge
  // closure. A bucket with astate.causes == 0 is *state-cacheable*: its
  // verdict is a pure function of the VerdictKey extended with the listed
  // protocols' automaton state (and nr/sig fields), so Authorize may serve
  // it from the verdict cache instead of bypassing.
  BucketAutomata astate_base;
  BucketAutomata astate;
  // Distinct JUMP-target chain ids of this bucket's rules, collected with
  // the base classification so the closure never rescans rule bodies.
  std::vector<int32_t> astate_jumps;
};

// Entrypoint index of one lowered chain: key -> an entry-table slice.
using EptSliceMap =
    std::unordered_map<EptKey, std::pair<uint32_t, uint32_t>, EptKeyHash>;

// One lowered chain. `rules` lists the chain's rule records in chain order
// (the disassembler's and analyzer's view); the buckets and the entrypoint
// index give the evaluator its op-filtered slices.
struct ProgramChain {
  std::string name;
  bool builtin = false;
  bool policy_drop = false;
  bool index_built = false;
  uint64_t op_mask = 0;
  std::vector<uint32_t> rules;  // rule-record indices, chain order
  std::array<ProgramBucket, sim::kOpCount> ops;
  // Entrypoint index re-pointed at entry-table slices. Like the legacy
  // Chain index the per-key rule list is NOT op-filtered (the kCheckOp
  // guard handles mismatches, bumping eval counters exactly as the tree
  // walker does). Immutable once the chain is lowered and held by
  // shared_ptr (null = no indexed entrypoints): a delta commit's program
  // copy shares every clean chain's map instead of re-hashing it, which is
  // what keeps a one-rule edit from paying O(total rules) per generation.
  std::shared_ptr<const EptSliceMap> ept;
  // STATE facts of this chain's live rules, cached for delta commits: when
  // the dirty chains' facts are value-equal across generations the automaton
  // pools are provably unchanged and BuildAutomataDelta reclassifies only
  // the dirty chains' buckets.
  ChainStateFacts state_facts;
};

// The compiled program artifact: one relocatable arena plus interned pools.
// Immutable after lowering; shares the Rule/module objects with the
// CompiledRuleset that owns it.
struct PfProgram {
  std::vector<uint64_t> arena;    // instruction words
  std::vector<uint32_t> entries;  // flattened bucket/index rule-record lists
  std::vector<RuleRecord> rules;
  std::vector<ProgramChain> chains;  // chain id = index (name-sorted)
  std::map<std::string, int32_t> chain_ids;
  int32_t root_input = -1;
  int32_t root_output = -1;
  int32_t root_create = -1;
  int32_t root_syscallbegin = -1;

  // Interned operand pools.
  std::vector<std::string> strings;
  std::vector<sim::Sid> sid_pool;
  std::vector<LabelSetRef> labelsets;
  std::vector<Operand> operands;
  // Escape-op targets: raw pointers into the module objects owned by the
  // shared Rule instances (same lifetime as the program).
  std::vector<const MatchModule*> native_matches;
  std::vector<const TargetModule*> native_targets;

  // Tuple-space classifier pools (see ProgramBucket).
  std::vector<TupleTable> tuple_tables;
  std::vector<TupleSlot> tuple_slots;
  uint64_t classifier_build_ns = 0;

  // STATE-protocol automaton pools (see AutomatonProtocol above). Valid —
  // and the per-bucket astate classifications meaningful — only when
  // `automata_built` is set by BuildAutomata; an engine configured with
  // automata off skips the pass and every consumer ignores the fields.
  std::vector<AutomatonKey> automaton_keys;
  std::vector<int64_t> automaton_values;
  std::vector<AutomatonProtocol> automaton_protocols;
  bool automata_built = false;
  uint64_t automata_build_ns = 0;

  // Delta-commit bookkeeping. A delta lowering (LowerProgramDelta) copies the
  // previous generation's program, marks the dirty chains' records dead
  // (RuleRecord::rule == nullptr; never reachable from any live table), and
  // appends the relowered chains. Dead words accumulate until the compaction
  // threshold in Engine::CommitRuleset forces a from-scratch relower.
  uint64_t dead_arena_words = 0;
  uint64_t dead_entry_slots = 0;
  uint32_t dead_rule_records = 0;

  // Intern maps live on the program (not the builder) so a delta build
  // dedupes against the pools it copied from the base generation.
  std::unordered_map<std::string, uint32_t> intern_strings;
  std::map<std::string, uint32_t> intern_labelsets;  // keyed by canonical form

  PfInsn Fetch(uint32_t pc) const {
    PfInsn insn{};
    std::memcpy(&insn, arena.data() + pc, sizeof(insn));
    return insn;
  }

  int32_t FindChain(const std::string& name) const {
    auto it = chain_ids.find(name);
    return it == chain_ids.end() ? -1 : it->second;
  }

  // LabelSet match semantics over the interned pool (mirrors rule.cc).
  bool SubjectMatches(uint32_t labelset, sim::Sid sid,
                      const sim::MacPolicy& policy) const {
    const LabelSetRef& ref = labelsets[labelset];
    if (ref.wildcard != 0) {
      return true;
    }
    bool in = SidInSlice(ref, sid) || (ref.syshigh != 0 && policy.IsSyshighSubject(sid));
    return ref.negate != 0 ? !in : in;
  }
  bool ObjectMatches(uint32_t labelset, sim::Sid sid,
                     const sim::MacPolicy& policy) const {
    const LabelSetRef& ref = labelsets[labelset];
    if (ref.wildcard != 0) {
      return true;
    }
    bool in = SidInSlice(ref, sid) || (ref.syshigh != 0 && policy.IsSyshighObject(sid));
    return ref.negate != 0 ? !in : in;
  }

 private:
  bool SidInSlice(const LabelSetRef& ref, sim::Sid sid) const {
    for (uint32_t i = 0; i < ref.len; ++i) {
      if (sid_pool[ref.off + i] == sid) {
        return true;
      }
    }
    return false;
  }
};

// Emits instructions and interns operands while a program is being built.
// Module Lower() overrides receive this; the lowering pass itself lives in
// compile.cc.
class ProgramBuilder {
 public:
  explicit ProgramBuilder(PfProgram& prog) : prog_(prog) {}

  // Appends one instruction; returns its arena word offset.
  uint32_t Emit(const PfInsn& insn);

  uint32_t InternString(const std::string& s);
  uint32_t InternLabelSet(const LabelSet& ls);
  uint32_t InternOperand(const Operand& op);
  uint32_t AddNativeMatch(const MatchModule* m);
  uint32_t AddNativeTarget(const TargetModule* t);

  // Chain id for a name, or -1 when undefined. Chain records are created
  // before any rule body is lowered, so forward JUMPs resolve.
  int32_t ChainId(const std::string& name) const { return prog_.FindChain(name); }

  PfProgram& program() { return prog_; }

 private:
  PfProgram& prog_;
};

struct CompiledRuleset;  // engine.h

// The commit-time lowering pass (compile.cc): flattens every filter-table
// chain of `snap` into snap.program and re-points the per-(chain,op)
// buckets and entrypoint index at arena/entry-table offsets. Requires the
// OpBucket compilation (Engine::CompileRuleset passes 1-2) to have run.
void LowerProgram(CompiledRuleset& snap);

// Incremental lowering: copy `prev`'s program (arena, pools, tables, intern
// maps), mark the records of the chains named in `dirty` dead, and re-lower
// only those chains, appending their records, slices, and classifier tables.
// Requires the staging chain-name set to equal prev's (Engine::CommitRuleset
// falls back to LowerProgram otherwise).
void LowerProgramDelta(CompiledRuleset& snap, const PfProgram& prev,
                       const std::vector<std::string>& dirty);

// Classifier shape summary for pfcheck / pftables --check.
struct ClassifierStats {
  uint32_t tables = 0;     // tuple tables across all (chain,op) buckets
  uint32_t tuples = 0;     // occupied slots
  uint32_t max_slice = 0;  // longest candidate slice (tuple or residual)
  uint32_t residual_rules = 0;  // entries reachable only by residual scan
};
ClassifierStats ComputeClassifierStats(const PfProgram& prog);

// Renders the program as deterministic, pool-resolved assembly (the
// `pftables -L --compiled` listing). Interned content is printed by value
// (label names, strings, chain names), never by pool index or counter, so
// the disassembly of a dump restored into a fresh kernel matches the
// original commit byte for byte.
std::string DisassemblePfProgram(const PfProgram& prog, const sim::LabelRegistry& labels);

}  // namespace pf::core

#endif  // SRC_CORE_PROGRAM_H_
