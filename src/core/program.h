// Compiled PF programs: the flat, arena-packed form of a committed rule
// base (DESIGN.md §"Compiled PF programs").
//
// iptables' kernel hot path walks a contiguous ipt_entry blob, not a pointer
// graph. This module gives the Process Firewall the same shape: at commit
// time every filter-table chain is *lowered* into a single relocatable arena
// of fixed-size instruction records — default matches and builtin -m modules
// become inline-operand match ops, verdicts become terminal ops, JUMP edges
// become chain ids resolved at lowering, and stateful/extension modules
// become escape ops that call back into the module object. Strings and
// LabelSets are interned into side pools so an instruction is 24 bytes of
// plain integers. The engine's hot path then runs a tight switch-dispatch
// loop over the arena (no virtual calls, no shared_ptr traffic); the
// analyzer and `pftables -L --compiled` consume the same artifact, so what
// is analyzed, printed, and executed can never disagree.
//
// Alignment / aliasing: the arena is a vector of uint64_t words and every
// instruction is an alignas(8) trivially-copyable 3-word record accessed
// through memcpy views (PfProgram::Fetch / ProgramBuilder::Emit) — no
// reinterpret_cast, no unaligned loads, UBSan-clean by construction.
#ifndef SRC_CORE_PROGRAM_H_
#define SRC_CORE_PROGRAM_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "src/core/modules.h"
#include "src/core/ruleset.h"

namespace pf::core {

// Instruction opcodes. Guard ops fall through on success and end the rule
// (no match) on failure; terminal ops produce the rule's verdict. The
// k*Native ops are the escape hatch for extension modules registered via
// Pftables::RegisterMatch/RegisterTarget: they dispatch virtually into the
// module object held in the program's native pools.
enum class PfOp : uint8_t {
  kRuleBegin = 1,   // a = rule-record index (bumps eval counters)
  kCheckOp,         // a = sim::Op the rule's -o pins
  kMatchSubject,    // a = labelset pool index (-s)
  kEnsureCtx,       // a = CtxMask to collect (the rule's install-time needs)
  // The entrypoint/object checks are self-guarding: each ensures its context
  // bit (a short-circuit after kEnsureCtx) and fails the rule when the
  // request lacks a valid frame / an object, before comparing.
  kCheckProgram,    // b = image dev, c = image ino (-p)
  kCheckEptOff,     // b = binary-relative PC (-i)
  kCheckIno,        // b = inode number (--ino)
  kMatchObject,     // a = labelset pool index (-d)
  kMatchState,      // a = key string idx, b = cmp operand idx (kFlagHasCmp)
  kMatchSignal,     // SIGNAL_MATCH (no operands)
  kMatchSyscallArg, // aux = arg index, b = value (as uint64)
  kMatchCompare,    // b = operand idx v1, c = operand idx v2
  kMatchInterp,     // a = suffix string idx, aux = lang + 1 (0 = any)
  kMatchNative,     // a = native-match pool index (virtual escape)
  kAccept,          // terminal verdicts --------------------------------
  kDrop,
  kReturn,
  kContinue,        // side-effect-free CONTINUE (keep traversing)
  kJump,            // a = chain id (kPfNoIndex: undefined), b = name idx
  kStateSet,        // a = key string idx, b = value operand idx
  kStateUnset,      // a = key string idx
  kLog,             // a = prefix string idx
  kTargetNative,    // a = native-target pool index (virtual escape)
  // Compile-time-specialized forms, appended so the base opcodes keep their
  // numbering. Lowering resolves the operand-kind and comparison-sense
  // branches of the generic ops above at compile time (the --cmp / --nequal
  // flags, the arg-0-means-syscall-nr convention), so the threaded hot loop
  // dispatches straight to a handler with no per-insn flag tests. The
  // generic forms stay executable (hand-built programs, older dumps) and
  // every specialized form disassembles to the same text as its generic
  // twin — listings are invariant under specialization.
  kMatchStateEq,      // kMatchState + kPfHasCmp, equal sense
  kMatchStateNe,      // kMatchState + kPfHasCmp + kPfNegate
  kMatchSyscallNrEq,  // kMatchSyscallArg with aux == 0 (the syscall number)
  kMatchSyscallNrNe,
  kMatchSyscallArgEq,  // kMatchSyscallArg with aux >= 1 (argument aux - 1)
  kMatchSyscallArgNe,
  kMatchCompareEq,  // kMatchCompare, equal sense
  kMatchCompareNe,  // kMatchCompare + kPfNegate
};

// One past the highest opcode: the size of the evaluator's dispatch table
// and the bound the load-time verifier proves every fetched op against.
inline constexpr uint32_t kPfOpCount = static_cast<uint32_t>(PfOp::kMatchCompareNe) + 1;

// Instruction flags.
inline constexpr uint8_t kPfNegate = 1u << 0;  // --nequal / negated compare
inline constexpr uint8_t kPfHasCmp = 1u << 1;  // STATE match carries --cmp

// Sentinel for "no pool entry / unresolved chain".
inline constexpr uint32_t kPfNoIndex = 0xffffffffu;

// One fixed-size instruction: 24 bytes, three arena words. A trivial type
// (construct with `PfInsn{}` for zeroed fields) so it can be memcpy'd in
// and out of the word arena without tripping -Wclass-memaccess.
struct alignas(8) PfInsn {
  uint8_t op;
  uint8_t flags;
  uint16_t aux;
  uint32_t a;
  uint64_t b;
  uint64_t c;
};
static_assert(sizeof(PfInsn) == 24, "PfInsn must stay three arena words");
static_assert(alignof(PfInsn) == 8, "PfInsn records are word-aligned");
static_assert(std::is_trivial_v<PfInsn> && std::is_trivially_copyable_v<PfInsn>,
              "memcpy views require it");

inline constexpr uint32_t kPfInsnWords =
    static_cast<uint32_t>(sizeof(PfInsn) / sizeof(uint64_t));

// An interned LabelSet: a slice of the shared sid pool plus the three
// modifier bits. Match semantics mirror LabelSet exactly (rule.cc).
struct alignas(8) LabelSetRef {
  uint32_t off = 0;  // into PfProgram::sid_pool
  uint32_t len = 0;
  uint8_t syshigh = 0;
  uint8_t negate = 0;
  uint8_t wildcard = 0;
};

// Per-rule metadata: where the rule's instructions live in the arena plus
// the side-table links the analyzer and the stats counters need. `rule`
// points into the Rule objects shared with the owning CompiledRuleset, so a
// record is valid exactly as long as its program.
struct RuleRecord {
  uint32_t entry = 0;  // arena word offset of kRuleBegin
  uint32_t end = 0;    // one past the rule's last word
  // Evaluator fast entry: past kRuleBegin (whose counter bumps the evaluator
  // prologue performs) and past any kCheckOp guard, which is true by
  // construction for rules reached through a per-op bucket. Entrypoint-index
  // lists are NOT op-filtered and must enter at entry + kPfInsnWords instead.
  uint32_t body = 0;
  uint32_t jump_name = kPfNoIndex;  // string idx of the declared JUMP target
  int32_t jump_chain = -1;          // resolved chain id (-1: none/undefined)
  // Owning chain and position within it, filled during lowering. This is the
  // (chain, rule) attribution the tracepoints put in TraceRecords and
  // `pftables -L -v` prints — the evaluator itself never reads them.
  int32_t chain_id = -1;
  uint32_t chain_index = 0;
  std::optional<TargetKind> static_kind;  // terminal kind, when static
  const Rule* rule = nullptr;
};

// Per-(chain, op) dispatch bucket, the program-form twin of OpBucket
// (engine.h) with the rule pointers re-pointed at entry-table slices.
struct ProgramBucket {
  uint32_t all_off = 0;    // slice of PfProgram::entries: every rule that
  uint32_t all_len = 0;    //   can match the op, in chain order
  uint32_t plain_off = 0;  // the non-entrypoint-indexed subset
  uint32_t plain_len = 0;
  CtxMask needs = 0;
  bool cacheable = true;
  bool has_indexed = false;
};

// One lowered chain. `rules` lists the chain's rule records in chain order
// (the disassembler's and analyzer's view); the buckets and the entrypoint
// index give the evaluator its op-filtered slices.
struct ProgramChain {
  std::string name;
  bool builtin = false;
  bool policy_drop = false;
  bool index_built = false;
  uint64_t op_mask = 0;
  std::vector<uint32_t> rules;  // rule-record indices, chain order
  std::array<ProgramBucket, sim::kOpCount> ops;
  // Entrypoint index re-pointed at entry-table slices. Like the legacy
  // Chain index the per-key rule list is NOT op-filtered (the kCheckOp
  // guard handles mismatches, bumping eval counters exactly as the tree
  // walker does).
  std::unordered_map<EptKey, std::pair<uint32_t, uint32_t>, EptKeyHash> ept;
};

// The compiled program artifact: one relocatable arena plus interned pools.
// Immutable after lowering; shares the Rule/module objects with the
// CompiledRuleset that owns it.
struct PfProgram {
  std::vector<uint64_t> arena;    // instruction words
  std::vector<uint32_t> entries;  // flattened bucket/index rule-record lists
  std::vector<RuleRecord> rules;
  std::vector<ProgramChain> chains;  // chain id = index (name-sorted)
  std::map<std::string, int32_t> chain_ids;
  int32_t root_input = -1;
  int32_t root_output = -1;
  int32_t root_create = -1;
  int32_t root_syscallbegin = -1;

  // Interned operand pools.
  std::vector<std::string> strings;
  std::vector<sim::Sid> sid_pool;
  std::vector<LabelSetRef> labelsets;
  std::vector<Operand> operands;
  // Escape-op targets: raw pointers into the module objects owned by the
  // shared Rule instances (same lifetime as the program).
  std::vector<const MatchModule*> native_matches;
  std::vector<const TargetModule*> native_targets;

  PfInsn Fetch(uint32_t pc) const {
    PfInsn insn{};
    std::memcpy(&insn, arena.data() + pc, sizeof(insn));
    return insn;
  }

  int32_t FindChain(const std::string& name) const {
    auto it = chain_ids.find(name);
    return it == chain_ids.end() ? -1 : it->second;
  }

  // LabelSet match semantics over the interned pool (mirrors rule.cc).
  bool SubjectMatches(uint32_t labelset, sim::Sid sid,
                      const sim::MacPolicy& policy) const {
    const LabelSetRef& ref = labelsets[labelset];
    if (ref.wildcard != 0) {
      return true;
    }
    bool in = SidInSlice(ref, sid) || (ref.syshigh != 0 && policy.IsSyshighSubject(sid));
    return ref.negate != 0 ? !in : in;
  }
  bool ObjectMatches(uint32_t labelset, sim::Sid sid,
                     const sim::MacPolicy& policy) const {
    const LabelSetRef& ref = labelsets[labelset];
    if (ref.wildcard != 0) {
      return true;
    }
    bool in = SidInSlice(ref, sid) || (ref.syshigh != 0 && policy.IsSyshighObject(sid));
    return ref.negate != 0 ? !in : in;
  }

 private:
  bool SidInSlice(const LabelSetRef& ref, sim::Sid sid) const {
    for (uint32_t i = 0; i < ref.len; ++i) {
      if (sid_pool[ref.off + i] == sid) {
        return true;
      }
    }
    return false;
  }
};

// Emits instructions and interns operands while a program is being built.
// Module Lower() overrides receive this; the lowering pass itself lives in
// compile.cc.
class ProgramBuilder {
 public:
  explicit ProgramBuilder(PfProgram& prog) : prog_(prog) {}

  // Appends one instruction; returns its arena word offset.
  uint32_t Emit(const PfInsn& insn);

  uint32_t InternString(const std::string& s);
  uint32_t InternLabelSet(const LabelSet& ls);
  uint32_t InternOperand(const Operand& op);
  uint32_t AddNativeMatch(const MatchModule* m);
  uint32_t AddNativeTarget(const TargetModule* t);

  // Chain id for a name, or -1 when undefined. Chain records are created
  // before any rule body is lowered, so forward JUMPs resolve.
  int32_t ChainId(const std::string& name) const { return prog_.FindChain(name); }

  PfProgram& program() { return prog_; }

 private:
  PfProgram& prog_;
  std::unordered_map<std::string, uint32_t> string_ids_;
  std::map<std::string, uint32_t> labelset_ids_;  // keyed by canonical form
};

struct CompiledRuleset;  // engine.h

// The commit-time lowering pass (compile.cc): flattens every filter-table
// chain of `snap` into snap.program and re-points the per-(chain,op)
// buckets and entrypoint index at arena/entry-table offsets. Requires the
// OpBucket compilation (Engine::CompileRuleset passes 1-2) to have run.
void LowerProgram(CompiledRuleset& snap);

// Renders the program as deterministic, pool-resolved assembly (the
// `pftables -L --compiled` listing). Interned content is printed by value
// (label names, strings, chain names), never by pool index or counter, so
// the disassembly of a dump restored into a fresh kernel matches the
// original commit byte for byte.
std::string DisassemblePfProgram(const PfProgram& prog, const sim::LabelRegistry& labels);

}  // namespace pf::core

#endif  // SRC_CORE_PROGRAM_H_
