// The Process Firewall "packet": one resource access plus the process and
// resource context needed to evaluate rules against it.
//
// Unlike a network firewall, the packet is not handed to us — context must
// be *fetched* from the process and from kernel data structures. Fields are
// therefore populated by context modules, guarded by a bitmask so each field
// is collected at most once per invocation (lazy retrieval, paper §4.2), and
// the expensive fields (stack unwinds) can additionally be cached across
// invocations within one system call (context caching).
#ifndef SRC_CORE_PACKET_H_
#define SRC_CORE_PACKET_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/core/unwind.h"
#include "src/sim/lsm.h"

namespace pf::core {

// Context fields a rule may require. Each has a context module that knows
// how to retrieve it (engine.cc) and a bit in Packet::have.
enum class Ctx : uint32_t {
  kObject,           // object sid / identity / owner (from the inode)
  kLinkTarget,       // symlink target attributes (owner comparisons, R8)
  kAdversaryAccess,  // adversary read/write accessibility of the object
  kEntrypoint,       // innermost user frame (program + relative PC)
  kUserStack,        // full unwound user stack
  kInterpStack,      // interpreter backtrace
  kCount,
};

constexpr uint32_t CtxBit(Ctx c) { return 1u << static_cast<uint32_t>(c); }

// Context variables usable in match/target module arguments (C_INO etc.),
// resolved against the packet at evaluation time.
enum class CtxVar : uint32_t {
  kIno,          // C_INO: object inode number
  kGen,          // C_GEN: object generation (kernel-only identity, survives
                 //        inode-number recycling — see cryogenic sleep tests)
  kDev,          // C_DEV: object device
  kSid,          // C_SID: object security id
  kDacOwner,     // C_DAC_OWNER: object owner uid
  kTgtDacOwner,  // C_TGT_DAC_OWNER: symlink target owner uid
  kTgtSid,       // C_TGT_SID: symlink target security id
  kPid,          // C_PID: calling process id
  kUid,          // C_UID: caller's real uid
  kEuid,         // C_EUID: caller's effective uid
  kSig,          // C_SIG: signal number being delivered
  kSyscall,      // C_SYSCALL: current syscall number
};

std::optional<CtxVar> CtxVarFromName(std::string_view name);
std::string_view CtxVarName(CtxVar v);

struct Packet {
  sim::AccessRequest* req = nullptr;
  uint32_t have = 0;  // bitmask of collected Ctx fields

  // --- kObject ---
  sim::Sid object_sid = sim::kInvalidSid;
  sim::FileId object_id;
  uint64_t object_generation = 0;
  sim::Uid object_owner = 0;
  bool has_object = false;

  // --- kLinkTarget ---
  bool has_link_target = false;
  sim::Uid link_target_owner = 0;
  sim::Sid link_target_sid = sim::kInvalidSid;
  sim::FileId link_target_id;
  sim::Uid link_owner = 0;  // owner of the link itself

  // --- kAdversaryAccess ---
  bool adversary_writable = false;
  bool adversary_readable = false;

  // --- kEntrypoint / kUserStack ---
  bool entrypoint_valid = false;
  BinFrame entrypoint;            // innermost frame
  const std::vector<BinFrame>* stack = nullptr;  // owned by stack_hold
  UnwindStatus stack_status = UnwindStatus::kAborted;

  // --- kInterpStack ---
  const std::vector<InterpRec>* interp = nullptr;  // owned by interp_hold
  UnwindStatus interp_status = UnwindStatus::kAborted;

  // Pins for the unwind snapshots backing `stack`/`interp`: the per-task
  // context cache may be refreshed by a concurrent hook evaluation, so the
  // packet keeps its own reference for the duration of the traversal.
  std::shared_ptr<const void> stack_hold;
  std::shared_ptr<const void> interp_hold;

  bool Has(Ctx c) const { return (have & CtxBit(c)) != 0; }
  void Mark(Ctx c) { have |= CtxBit(c); }

  // Resolves a context variable; nullopt when the needed context is absent
  // (e.g. C_TGT_DAC_OWNER on a non-link access).
  std::optional<int64_t> Resolve(CtxVar v) const;
};

}  // namespace pf::core

#endif  // SRC_CORE_PACKET_H_
