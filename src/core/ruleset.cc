#include "src/core/ruleset.h"

namespace pf::core {

void Chain::Insert(std::shared_ptr<Rule> rule, size_t pos) {
  if (pos > rules_.size()) {
    pos = rules_.size();
  }
  rules_.insert(rules_.begin() + static_cast<long>(pos), std::move(rule));
  ++edit_seq_;
  InvalidateIndex();
}

void Chain::Append(std::shared_ptr<Rule> rule) {
  rules_.push_back(std::move(rule));
  ++edit_seq_;
  InvalidateIndex();
}

bool Chain::Delete(size_t pos) {
  if (pos >= rules_.size()) {
    return false;
  }
  rules_.erase(rules_.begin() + static_cast<long>(pos));
  ++edit_seq_;
  InvalidateIndex();
  return true;
}

void Chain::Flush() {
  rules_.clear();
  ++edit_seq_;
  InvalidateIndex();
}

void Chain::InvalidateIndex() {
  index_built_ = false;
  index_.reset();
}

const ChainIndex& Chain::index() const {
  static const ChainIndex kEmpty;
  return index_ ? *index_ : kEmpty;
}

void Chain::BuildIndex() {
  // Build a fresh index rather than mutating in place: copies of this Chain
  // (published snapshots) may still share the previous one.
  auto idx = std::make_shared<ChainIndex>();
  for (const auto& r : rules_) {
    if (r->IndexableByEntrypoint()) {
      idx->by_ept[EptKey{r->program_file, *r->entrypoint}].push_back(r.get());
    } else {
      idx->plain.push_back(r.get());
    }
  }
  index_ = std::move(idx);
  index_built_ = true;
}

const std::vector<const Rule*>* Chain::EptRules(const EptKey& key) const {
  const auto& by_ept = index().by_ept;
  auto it = by_ept.find(key);
  return it == by_ept.end() ? nullptr : &it->second;
}

Chain* Table::Find(const std::string& chain) {
  auto it = chains_.find(chain);
  return it == chains_.end() ? nullptr : &it->second;
}

const Chain* Table::Find(const std::string& chain) const {
  auto it = chains_.find(chain);
  return it == chains_.end() ? nullptr : &it->second;
}

Chain& Table::GetOrCreate(const std::string& chain) {
  auto it = chains_.find(chain);
  if (it == chains_.end()) {
    it = chains_.emplace(chain, Chain(chain, false)).first;
  }
  return it->second;
}

bool Table::NewChain(const std::string& chain) {
  if (chains_.count(chain) != 0) {
    return false;
  }
  chains_.emplace(chain, Chain(chain, false));
  return true;
}

void Table::FlushAll() {
  for (auto& [name, chain] : chains_) {
    chain.Flush();
  }
}

size_t Table::total_rules() const {
  size_t n = 0;
  for (const auto& [name, chain] : chains_) {
    n += chain.size();
  }
  return n;
}

}  // namespace pf::core
