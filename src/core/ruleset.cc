#include "src/core/ruleset.h"

namespace pf::core {

void Chain::Insert(std::shared_ptr<Rule> rule, size_t pos) {
  if (pos > rules_.size()) {
    pos = rules_.size();
  }
  rules_.insert(rules_.begin() + static_cast<long>(pos), std::move(rule));
  InvalidateIndex();
}

void Chain::Append(std::shared_ptr<Rule> rule) {
  rules_.push_back(std::move(rule));
  InvalidateIndex();
}

bool Chain::Delete(size_t pos) {
  if (pos >= rules_.size()) {
    return false;
  }
  rules_.erase(rules_.begin() + static_cast<long>(pos));
  InvalidateIndex();
  return true;
}

void Chain::Flush() {
  rules_.clear();
  InvalidateIndex();
}

void Chain::InvalidateIndex() {
  index_built_ = false;
  plain_.clear();
  by_ept_.clear();
}

void Chain::BuildIndex() {
  InvalidateIndex();
  for (const auto& r : rules_) {
    if (r->IndexableByEntrypoint()) {
      by_ept_[EptKey{r->program_file, *r->entrypoint}].push_back(r.get());
    } else {
      plain_.push_back(r.get());
    }
  }
  index_built_ = true;
}

const std::vector<const Rule*>* Chain::EptRules(const EptKey& key) const {
  auto it = by_ept_.find(key);
  return it == by_ept_.end() ? nullptr : &it->second;
}

Chain* Table::Find(const std::string& chain) {
  auto it = chains_.find(chain);
  return it == chains_.end() ? nullptr : &it->second;
}

const Chain* Table::Find(const std::string& chain) const {
  auto it = chains_.find(chain);
  return it == chains_.end() ? nullptr : &it->second;
}

Chain& Table::GetOrCreate(const std::string& chain) {
  auto it = chains_.find(chain);
  if (it == chains_.end()) {
    it = chains_.emplace(chain, Chain(chain, false)).first;
  }
  return it->second;
}

bool Table::NewChain(const std::string& chain) {
  if (chains_.count(chain) != 0) {
    return false;
  }
  chains_.emplace(chain, Chain(chain, false));
  return true;
}

void Table::FlushAll() {
  for (auto& [name, chain] : chains_) {
    chain.Flush();
  }
}

size_t Table::total_rules() const {
  size_t n = 0;
  for (const auto& [name, chain] : chains_) {
    n += chain.size();
  }
  return n;
}

}  // namespace pf::core
