// pftables: the rule-language front-end (paper Table 3, §5.2).
//
// Accepts iptables-style command lines:
//
//   pftables [-t table] [-I chain [pos] | -A chain | -D chain pos |
//             -N chain | -F [chain]] [rule_spec]
//   rule_spec: [-s labelset] [-d labelset] [-i ept] [-o op] [-p program]
//              [--ino n] [-m module opts...]* [-j target opts...]
//   labelset : name | SYSHIGH | {a|b|...} | ~name | ~{a|b|SYSHIGH}
//
// When no chain command is given the rule is appended to the `input` chain
// (the paper's listings R1-R8 rely on this default). At install time label
// names are translated to security IDs and program paths to inode numbers
// for fast matching, exactly as described in the paper.
#ifndef SRC_CORE_PFTABLES_H_
#define SRC_CORE_PFTABLES_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/analysis/diagnostics.h"
#include "src/core/engine.h"
#include "src/core/status.h"

namespace pf::core {

// Commit-time static-analysis gate (`pftables --check[=error|warn] ...`).
// kError refuses to apply a command whose resulting rule base carries any
// error-severity diagnostic (the staging rule base is rolled back and
// nothing is published); kWarn applies the command but logs the findings;
// kOff (the default) skips analysis entirely.
enum class CheckMode { kOff, kWarn, kError };

// Extension factories: the "userspace half" of a match/target module that
// parses rule-language options into a module instance (the instance itself
// is the kernel half). Mirrors how iptables extensions register themselves.
using MatchFactoryFn =
    std::function<Status(const std::vector<std::string>&, std::unique_ptr<MatchModule>*)>;
using TargetFactoryFn =
    std::function<Status(const std::vector<std::string>&, std::unique_ptr<TargetModule>*)>;

class Pftables {
 public:
  explicit Pftables(Engine* engine) : engine_(engine) {}

  // Registers a custom match/target module under its rule-language name
  // (e.g. "-m OWNER ..."). Custom names shadow the built-in set.
  void RegisterMatch(const std::string& name, MatchFactoryFn factory) {
    custom_matches_[name] = std::move(factory);
  }
  void RegisterTarget(const std::string& name, TargetFactoryFn factory) {
    custom_targets_[name] = std::move(factory);
  }

  // Executes one pftables command line (the leading "pftables" word is
  // optional). Lines that are empty or start with '#'/'*' are ignored, so
  // annotated rule files can be fed line by line. A `--check[=error|warn]`
  // flag before the chain command runs the static analyzer over the
  // resulting rule base; see CheckMode.
  //
  // Symbolic decision-space flags (src/analysis/symbolic/):
  //   --diff <path>      Standalone: loads <path> (a Save() dump or a file
  //                      of pftables lines) into a scratch engine and prints
  //                      the semantic diff old→live — the exact regions of
  //                      the decision space where the two bases decide
  //                      differently. No chain command follows.
  //   --widening-gate    Before committing a mutating command, diffs the
  //                      staged base against the published generation and
  //                      rejects the command transactionally if any region
  //                      flips toward ALLOW (the staged edit rolls back, the
  //                      published generation is untouched).
  //   --allow-widening   Overrides the gate for an intended widening.
  Status Exec(const std::string& command);

  // Executes many commands as one batch: the per-chain reindex and the
  // engine commit are deferred to the end (and to any --check line, which
  // must gate the fully staged base), so installing an n-rule dump costs one
  // reindex and one commit instead of n. Stops at the first error; commands
  // that succeeded before it remain staged and committed.
  Status ExecAll(const std::vector<std::string>& commands);

  // Renders a table's chains, rules, and counters; for the filter table the
  // static analyzer's findings are appended as '# ...' annotation lines.
  // Verbose (`-L -v`) additionally prints each rule's accumulated evaluation
  // time (populated while per-rule tracing is enabled; see src/trace) and a
  // per-chain totals line summing evals/hits/time over the chain's rules.
  std::string List(const std::string& table = "filter", bool verbose = false) const;

  // Renders the committed program form (`pftables -L --compiled`): the
  // commit-time lowering of the filter table disassembled chain by chain —
  // arena instructions with pool operands resolved to label/string values,
  // per-op dispatch masks, and the entrypoint index. Deterministic across
  // kernel instances: Restore(Save()) into a fresh kernel disassembles
  // byte-identically.
  std::string ListCompiled() const;

  // Renders the audit pipeline's live view (`pftables --audit`): the hub's
  // conservation counters followed by the aggregator's per-(rule, subject,
  // entrypoint) deny-rate windows, suppression totals, and anomaly flags.
  // Non-destructive — the record rings are left for the drain consumers.
  std::string AuditText() const;

  // Serializes the rule base as re-installable commands (pftables-save).
  // Round trip: Restore(Save()) reproduces the rule base.
  std::string Save(const std::string& table = "filter") const;

  // Executes a Save()-format dump line by line (pftables-restore). With a
  // check mode, the whole dump is gated as one unit: any line error or (in
  // kError mode) any error-severity diagnostic rolls the rule base back to
  // its pre-restore state.
  Status Restore(const std::string& dump, CheckMode check = CheckMode::kOff);

  // Zeroes rule counters (evals, hits, accumulated eval time) — all chains,
  // or one chain when `chain` is non-empty (`-Z [chain]`). Transactional
  // with respect to Engine::stats() readers: the counter-mutation generation
  // is odd for the duration, so a concurrent aggregation reports itself as
  // torn instead of silently mixing pre- and post-zero counts.
  Status ZeroCounters(const std::string& chain = std::string());

  Engine& engine() { return *engine_; }

  // The report of the most recent --check / checked Restore on this
  // front-end (empty until one runs).
  const analysis::AnalysisReport& last_check() const { return last_check_; }

  // Tokenizes a command line (exposed for tests): whitespace-separated,
  // honoring single and double quotes. An unterminated quote is a parse
  // error — silently swallowing the rest of the line once hid rule tails.
  static Status Tokenize(const std::string& line, std::vector<std::string>* out);

 private:
  Status ParseLabelSet(const std::string& token, LabelSet* out);
  Status DiffAgainstFile(const std::string& path);
  Status ParseRule(const std::vector<std::string>& tokens, size_t from, Rule* rule);
  void ReindexAll(Table& table);
  void Reindex(Table& table);           // batch-aware: defers while batching
  Status CommitStaged();                // batch-aware commit wrapper
  Status FlushBatch();                  // reindex + commit deferred batch work

  Engine* engine_;
  std::map<std::string, MatchFactoryFn> custom_matches_;
  std::map<std::string, TargetFactoryFn> custom_targets_;
  analysis::AnalysisReport last_check_;
  // ExecAll batching state (see ExecAll): while true, mutating commands
  // record that a reindex/commit is owed instead of performing it per line.
  bool batching_ = false;
  bool batch_dirty_ = false;
};

}  // namespace pf::core

#endif  // SRC_CORE_PFTABLES_H_
