#include "src/core/program.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace pf::core {

// --- ProgramBuilder ----------------------------------------------------------

uint32_t ProgramBuilder::Emit(const PfInsn& insn) {
  const uint32_t pc = static_cast<uint32_t>(prog_.arena.size());
  prog_.arena.resize(prog_.arena.size() + kPfInsnWords);
  std::memcpy(prog_.arena.data() + pc, &insn, sizeof(insn));
  return pc;
}

uint32_t ProgramBuilder::InternString(const std::string& s) {
  auto [it, inserted] = string_ids_.try_emplace(s, static_cast<uint32_t>(prog_.strings.size()));
  if (inserted) {
    prog_.strings.push_back(s);
  }
  return it->second;
}

uint32_t ProgramBuilder::InternLabelSet(const LabelSet& ls) {
  // Canonical key over the sid values and modifier bits (sids are stable
  // within one kernel; the disassembler renders names, not pool contents,
  // so interning order never leaks into user-visible output).
  std::ostringstream key;
  key << (ls.wildcard ? 'w' : '-') << (ls.negate ? 'n' : '-') << (ls.syshigh ? 's' : '-');
  for (sim::Sid sid : ls.sids) {
    key << ',' << sid;
  }
  auto [it, inserted] =
      labelset_ids_.try_emplace(key.str(), static_cast<uint32_t>(prog_.labelsets.size()));
  if (inserted) {
    LabelSetRef ref;
    ref.off = static_cast<uint32_t>(prog_.sid_pool.size());
    ref.len = static_cast<uint32_t>(ls.sids.size());
    ref.syshigh = ls.syshigh ? 1 : 0;
    ref.negate = ls.negate ? 1 : 0;
    ref.wildcard = ls.wildcard ? 1 : 0;
    prog_.sid_pool.insert(prog_.sid_pool.end(), ls.sids.begin(), ls.sids.end());
    prog_.labelsets.push_back(ref);
  }
  return it->second;
}

uint32_t ProgramBuilder::InternOperand(const Operand& op) {
  prog_.operands.push_back(op);
  return static_cast<uint32_t>(prog_.operands.size() - 1);
}

uint32_t ProgramBuilder::AddNativeMatch(const MatchModule* m) {
  prog_.native_matches.push_back(m);
  return static_cast<uint32_t>(prog_.native_matches.size() - 1);
}

uint32_t ProgramBuilder::AddNativeTarget(const TargetModule* t) {
  prog_.native_targets.push_back(t);
  return static_cast<uint32_t>(prog_.native_targets.size() - 1);
}

// --- disassembler ------------------------------------------------------------

namespace {

std::string CtxMaskNames(CtxMask mask) {
  static constexpr const char* kNames[] = {"object",     "link-target", "adversary",
                                           "entrypoint", "user-stack",  "interp-stack"};
  std::string out;
  for (uint32_t i = 0; i < static_cast<uint32_t>(Ctx::kCount); ++i) {
    if ((mask & (1u << i)) != 0) {
      if (!out.empty()) {
        out += "|";
      }
      out += kNames[i];
    }
  }
  return out.empty() ? "nothing" : out;
}

std::string RenderLabelSet(const PfProgram& prog, uint32_t idx,
                           const sim::LabelRegistry& labels) {
  const LabelSetRef& ref = prog.labelsets[idx];
  LabelSet ls;
  ls.wildcard = ref.wildcard != 0;
  ls.negate = ref.negate != 0;
  ls.syshigh = ref.syshigh != 0;
  ls.sids.assign(prog.sid_pool.begin() + ref.off, prog.sid_pool.begin() + ref.off + ref.len);
  return ls.Render(labels);
}

const char* LangName(uint16_t aux) {
  switch (static_cast<sim::InterpLang>(aux - 1)) {
    case sim::InterpLang::kPhp:
      return "php";
    case sim::InterpLang::kPython:
      return "python";
    case sim::InterpLang::kBash:
      return "bash";
    case sim::InterpLang::kNone:
      break;
  }
  return "?";
}

std::string EqFlag(uint8_t flags) {
  return (flags & kPfNegate) != 0 ? "--nequal" : "--equal";
}

std::string RenderInsn(const PfProgram& prog, const RuleRecord& rec, const PfInsn& insn,
                       const sim::LabelRegistry& labels) {
  std::ostringstream oss;
  switch (static_cast<PfOp>(insn.op)) {
    case PfOp::kRuleBegin:
      oss << "RULE_BEGIN";
      break;
    case PfOp::kCheckOp:
      oss << "CHECK_OP " << sim::OpName(static_cast<sim::Op>(insn.a));
      break;
    case PfOp::kMatchSubject:
      oss << "MATCH_SUBJECT " << RenderLabelSet(prog, insn.a, labels);
      break;
    case PfOp::kEnsureCtx:
      oss << "ENSURE_CTX " << CtxMaskNames(insn.a);
      break;
    case PfOp::kCheckProgram:
      // The path comes from the side table: the insn itself carries only the
      // compiled FileId, whose dev/ino are kernel-instance specific.
      oss << "CHECK_PROGRAM " << (rec.rule != nullptr ? rec.rule->program : "?");
      break;
    case PfOp::kCheckEptOff:
      oss << "CHECK_EPT_OFF 0x" << std::hex << insn.b << std::dec;
      break;
    case PfOp::kCheckIno:
      oss << "CHECK_INO " << insn.b;
      break;
    case PfOp::kMatchObject:
      oss << "MATCH_OBJECT " << RenderLabelSet(prog, insn.a, labels);
      break;
    case PfOp::kMatchState:
    case PfOp::kMatchStateEq:
    case PfOp::kMatchStateNe:
      // Specialized forms carry the same flags as their generic twin, so one
      // renderer covers all three and listings are specialization-invariant.
      oss << "MATCH_STATE --key " << prog.strings[insn.a];
      if ((insn.flags & kPfHasCmp) != 0) {
        oss << " --cmp " << prog.operands[insn.b].Render() << " " << EqFlag(insn.flags);
      }
      break;
    case PfOp::kMatchSignal:
      oss << "MATCH_SIGNAL";
      break;
    case PfOp::kMatchSyscallArg:
    case PfOp::kMatchSyscallNrEq:
    case PfOp::kMatchSyscallNrNe:
    case PfOp::kMatchSyscallArgEq:
    case PfOp::kMatchSyscallArgNe:
      oss << "MATCH_SYSCALL_ARG --arg " << insn.aux << " " << EqFlag(insn.flags) << " "
          << static_cast<int64_t>(insn.b);
      break;
    case PfOp::kMatchCompare:
    case PfOp::kMatchCompareEq:
    case PfOp::kMatchCompareNe:
      oss << "MATCH_COMPARE --v1 " << prog.operands[insn.b].Render() << " --v2 "
          << prog.operands[static_cast<uint32_t>(insn.c)].Render() << " "
          << EqFlag(insn.flags);
      break;
    case PfOp::kMatchInterp:
      oss << "MATCH_INTERP";
      if (!prog.strings[insn.a].empty()) {
        oss << " --script " << prog.strings[insn.a];
      }
      if (insn.aux != 0) {
        oss << " --lang " << LangName(insn.aux);
      }
      break;
    case PfOp::kMatchNative:
      oss << "MATCH_NATIVE " << prog.native_matches[insn.a]->Render();
      break;
    case PfOp::kAccept:
      oss << "ACCEPT";
      break;
    case PfOp::kDrop:
      oss << "DROP";
      break;
    case PfOp::kReturn:
      oss << "RETURN";
      break;
    case PfOp::kContinue:
      oss << "CONTINUE";
      break;
    case PfOp::kJump:
      oss << "JUMP -> ";
      if (insn.a != kPfNoIndex) {
        oss << prog.chains[insn.a].name;
      } else {
        oss << prog.strings[static_cast<uint32_t>(insn.b)] << " (undefined)";
      }
      break;
    case PfOp::kStateSet:
      oss << "STATE_SET --key " << prog.strings[insn.a] << " --value "
          << prog.operands[static_cast<uint32_t>(insn.b)].Render();
      break;
    case PfOp::kStateUnset:
      oss << "STATE_UNSET --key " << prog.strings[insn.a];
      break;
    case PfOp::kLog:
      oss << "LOG";
      if (!prog.strings[insn.a].empty()) {
        oss << " --prefix " << prog.strings[insn.a];
      }
      break;
    case PfOp::kTargetNative:
      oss << "TARGET_NATIVE " << prog.native_targets[insn.a]->Render();
      break;
  }
  return oss.str();
}

}  // namespace

std::string DisassemblePfProgram(const PfProgram& prog, const sim::LabelRegistry& labels) {
  std::ostringstream oss;
  size_t insns = 0;
  for (const RuleRecord& rec : prog.rules) {
    insns += (rec.end - rec.entry) / kPfInsnWords;
  }
  oss << ";; pf program: chains=" << prog.chains.size() << " rules=" << prog.rules.size()
      << " insns=" << insns << " arena_words=" << prog.arena.size() << "\n";
  oss << ";; pools: strings=" << prog.strings.size()
      << " labelsets=" << prog.labelsets.size() << " sids=" << prog.sid_pool.size()
      << " operands=" << prog.operands.size()
      << " native_matches=" << prog.native_matches.size()
      << " native_targets=" << prog.native_targets.size() << "\n";
  for (const ProgramChain& chain : prog.chains) {
    oss << "chain " << chain.name << " (" << (chain.builtin ? "builtin" : "user")
        << ", policy " << (chain.policy_drop ? "DROP" : "ACCEPT") << ", "
        << chain.rules.size() << " rules";
    if (chain.index_built && !chain.ept.empty()) {
      oss << ", ept-indexed " << chain.ept.size() << " entrypoints";
    }
    oss << ")\n";
    if (chain.op_mask != 0) {
      oss << "  ops:";
      for (size_t opi = 0; opi < sim::kOpCount; ++opi) {
        if ((chain.op_mask >> opi) & 1) {
          oss << " " << sim::OpName(static_cast<sim::Op>(opi));
        }
      }
      oss << "\n";
    }
    // Chain-order rule bodies. Offsets are printed relative to the rule's
    // entry so the listing is invariant under arena relocation.
    std::unordered_map<uint32_t, size_t> chain_pos;  // record idx -> 1-based pos
    for (size_t i = 0; i < chain.rules.size(); ++i) {
      chain_pos[chain.rules[i]] = i + 1;
      const RuleRecord& rec = prog.rules[chain.rules[i]];
      oss << "  rule " << (i + 1) << ":\n";
      for (uint32_t pc = rec.entry; pc < rec.end; pc += kPfInsnWords) {
        char off[16];
        std::snprintf(off, sizeof(off), "%04u", (pc - rec.entry) / kPfInsnWords);
        oss << "    +" << off << " " << RenderInsn(prog, rec, prog.Fetch(pc), labels)
            << "\n";
      }
    }
    // Entrypoint index, in deterministic (dev, ino, offset) order. Rule
    // lists render as chain positions, not record indices.
    if (chain.index_built && !chain.ept.empty()) {
      std::vector<std::pair<EptKey, std::pair<uint32_t, uint32_t>>> keys(chain.ept.begin(),
                                                                         chain.ept.end());
      std::sort(keys.begin(), keys.end(), [](const auto& x, const auto& y) {
        if (x.first.file.dev != y.first.file.dev) {
          return x.first.file.dev < y.first.file.dev;
        }
        if (x.first.file.ino != y.first.file.ino) {
          return x.first.file.ino < y.first.file.ino;
        }
        return x.first.offset < y.first.offset;
      });
      for (const auto& [key, slice] : keys) {
        oss << "  ept ";
        // Render the entrypoint via a member rule's program path (stable
        // across kernels, unlike dev/ino).
        std::string path = "?";
        if (slice.second > 0) {
          const RuleRecord& rec = prog.rules[prog.entries[slice.first]];
          if (rec.rule != nullptr && !rec.rule->program.empty()) {
            path = rec.rule->program;
          }
        }
        oss << path << "+0x" << std::hex << key.offset << std::dec << " -> rules";
        for (uint32_t i = 0; i < slice.second; ++i) {
          oss << " " << chain_pos[prog.entries[slice.first + i]];
        }
        oss << "\n";
      }
    }
  }
  return oss.str();
}

}  // namespace pf::core
