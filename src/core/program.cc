#include "src/core/program.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "src/core/automata.h"

namespace pf::core {

// --- ProgramBuilder ----------------------------------------------------------

uint32_t ProgramBuilder::Emit(const PfInsn& insn) {
  const uint32_t pc = static_cast<uint32_t>(prog_.arena.size());
  prog_.arena.resize(prog_.arena.size() + kPfInsnWords);
  std::memcpy(prog_.arena.data() + pc, &insn, sizeof(insn));
  return pc;
}

uint32_t ProgramBuilder::InternString(const std::string& s) {
  auto [it, inserted] =
      prog_.intern_strings.try_emplace(s, static_cast<uint32_t>(prog_.strings.size()));
  if (inserted) {
    prog_.strings.push_back(s);
  }
  return it->second;
}

uint32_t ProgramBuilder::InternLabelSet(const LabelSet& ls) {
  // Canonical key over the sid values and modifier bits (sids are stable
  // within one kernel; the disassembler renders names, not pool contents,
  // so interning order never leaks into user-visible output).
  std::ostringstream key;
  key << (ls.wildcard ? 'w' : '-') << (ls.negate ? 'n' : '-') << (ls.syshigh ? 's' : '-');
  for (sim::Sid sid : ls.sids) {
    key << ',' << sid;
  }
  auto [it, inserted] =
      prog_.intern_labelsets.try_emplace(key.str(), static_cast<uint32_t>(prog_.labelsets.size()));
  if (inserted) {
    LabelSetRef ref;
    ref.off = static_cast<uint32_t>(prog_.sid_pool.size());
    ref.len = static_cast<uint32_t>(ls.sids.size());
    ref.syshigh = ls.syshigh ? 1 : 0;
    ref.negate = ls.negate ? 1 : 0;
    ref.wildcard = ls.wildcard ? 1 : 0;
    prog_.sid_pool.insert(prog_.sid_pool.end(), ls.sids.begin(), ls.sids.end());
    prog_.labelsets.push_back(ref);
  }
  return it->second;
}

uint32_t ProgramBuilder::InternOperand(const Operand& op) {
  prog_.operands.push_back(op);
  return static_cast<uint32_t>(prog_.operands.size() - 1);
}

uint32_t ProgramBuilder::AddNativeMatch(const MatchModule* m) {
  prog_.native_matches.push_back(m);
  return static_cast<uint32_t>(prog_.native_matches.size() - 1);
}

uint32_t ProgramBuilder::AddNativeTarget(const TargetModule* t) {
  prog_.native_targets.push_back(t);
  return static_cast<uint32_t>(prog_.native_targets.size() - 1);
}

// --- tuple-space classifier keys ---------------------------------------------

uint64_t TupleKeyHash(uint8_t mask, const TupleKey& key) {
  size_t h = std::hash<uint64_t>()(0x7f00u | mask);
  if ((mask & kTupleDimSubject) != 0) {
    h = HashCombine(h, std::hash<uint64_t>()(key.subject));
  }
  if ((mask & kTupleDimEpt) != 0) {
    h = HashCombine(h, std::hash<uint64_t>()(key.ept_dev));
    h = HashCombine(h, std::hash<uint64_t>()(key.ept_ino));
    h = HashCombine(h, std::hash<uint64_t>()(key.ept_off));
  }
  if ((mask & kTupleDimObject) != 0) {
    h = HashCombine(h, std::hash<uint64_t>()(key.object));
  }
  if ((mask & kTupleDimIno) != 0) {
    h = HashCombine(h, std::hash<uint64_t>()(key.ino));
  }
  return h;
}

bool TupleKeyEq(uint8_t mask, const TupleKey& lhs, const TupleKey& rhs) {
  if ((mask & kTupleDimSubject) != 0 && lhs.subject != rhs.subject) {
    return false;
  }
  if ((mask & kTupleDimEpt) != 0 &&
      (lhs.ept_dev != rhs.ept_dev || lhs.ept_ino != rhs.ept_ino ||
       lhs.ept_off != rhs.ept_off)) {
    return false;
  }
  if ((mask & kTupleDimObject) != 0 && lhs.object != rhs.object) {
    return false;
  }
  return (mask & kTupleDimIno) == 0 || lhs.ino == rhs.ino;
}

ClassifierStats ComputeClassifierStats(const PfProgram& prog) {
  ClassifierStats stats;
  for (const ProgramChain& pc : prog.chains) {
    for (const ProgramBucket& pb : pc.ops) {
      if (!pb.has_classifier) {
        continue;
      }
      stats.tables += pb.tuple_cnt;
      stats.max_slice = std::max(stats.max_slice, pb.residual_len);
      stats.residual_rules += pb.residual_len;
      for (uint32_t t = 0; t < pb.tuple_cnt; ++t) {
        const TupleTable& table = prog.tuple_tables[pb.tuple_off + t];
        stats.tuples += table.used;
        for (uint32_t s = 0; s < table.slot_count; ++s) {
          stats.max_slice =
              std::max(stats.max_slice, prog.tuple_slots[table.slot_off + s].len);
        }
      }
    }
  }
  return stats;
}

// --- disassembler ------------------------------------------------------------

namespace {

std::string CtxMaskNames(CtxMask mask) {
  static constexpr const char* kNames[] = {"object",     "link-target", "adversary",
                                           "entrypoint", "user-stack",  "interp-stack"};
  std::string out;
  for (uint32_t i = 0; i < static_cast<uint32_t>(Ctx::kCount); ++i) {
    if ((mask & (1u << i)) != 0) {
      if (!out.empty()) {
        out += "|";
      }
      out += kNames[i];
    }
  }
  return out.empty() ? "nothing" : out;
}

std::string RenderLabelSet(const PfProgram& prog, uint32_t idx,
                           const sim::LabelRegistry& labels) {
  const LabelSetRef& ref = prog.labelsets[idx];
  LabelSet ls;
  ls.wildcard = ref.wildcard != 0;
  ls.negate = ref.negate != 0;
  ls.syshigh = ref.syshigh != 0;
  ls.sids.assign(prog.sid_pool.begin() + ref.off, prog.sid_pool.begin() + ref.off + ref.len);
  return ls.Render(labels);
}

const char* LangName(uint16_t aux) {
  switch (static_cast<sim::InterpLang>(aux - 1)) {
    case sim::InterpLang::kPhp:
      return "php";
    case sim::InterpLang::kPython:
      return "python";
    case sim::InterpLang::kBash:
      return "bash";
    case sim::InterpLang::kNone:
      break;
  }
  return "?";
}

std::string EqFlag(uint8_t flags) {
  return (flags & kPfNegate) != 0 ? "--nequal" : "--equal";
}

std::string RenderInsn(const PfProgram& prog, const RuleRecord& rec, const PfInsn& insn,
                       const sim::LabelRegistry& labels) {
  std::ostringstream oss;
  switch (static_cast<PfOp>(insn.op)) {
    case PfOp::kRuleBegin:
      oss << "RULE_BEGIN";
      break;
    case PfOp::kCheckOp:
      oss << "CHECK_OP " << sim::OpName(static_cast<sim::Op>(insn.a));
      break;
    case PfOp::kMatchSubject:
      oss << "MATCH_SUBJECT " << RenderLabelSet(prog, insn.a, labels);
      break;
    case PfOp::kEnsureCtx:
      oss << "ENSURE_CTX " << CtxMaskNames(insn.a);
      break;
    case PfOp::kCheckProgram:
      // The path comes from the side table: the insn itself carries only the
      // compiled FileId, whose dev/ino are kernel-instance specific.
      oss << "CHECK_PROGRAM " << (rec.rule != nullptr ? rec.rule->program : "?");
      break;
    case PfOp::kCheckEptOff:
      oss << "CHECK_EPT_OFF 0x" << std::hex << insn.b << std::dec;
      break;
    case PfOp::kCheckIno:
      oss << "CHECK_INO " << insn.b;
      break;
    case PfOp::kMatchObject:
      oss << "MATCH_OBJECT " << RenderLabelSet(prog, insn.a, labels);
      break;
    case PfOp::kMatchState:
    case PfOp::kMatchStateEq:
    case PfOp::kMatchStateNe:
      // Specialized forms carry the same flags as their generic twin, so one
      // renderer covers all three and listings are specialization-invariant.
      oss << "MATCH_STATE --key " << prog.strings[insn.a];
      if ((insn.flags & kPfHasCmp) != 0) {
        oss << " --cmp " << prog.operands[insn.b].Render() << " " << EqFlag(insn.flags);
      }
      break;
    case PfOp::kMatchSignal:
      oss << "MATCH_SIGNAL";
      break;
    case PfOp::kMatchPhase:
      oss << "MATCH_PHASE --is " << prog.strings[insn.a];
      if ((insn.flags & kPfNegate) != 0) {
        oss << " --nequal";
      }
      break;
    case PfOp::kMatchSyscallArg:
    case PfOp::kMatchSyscallNrEq:
    case PfOp::kMatchSyscallNrNe:
    case PfOp::kMatchSyscallArgEq:
    case PfOp::kMatchSyscallArgNe:
      oss << "MATCH_SYSCALL_ARG --arg " << insn.aux << " " << EqFlag(insn.flags) << " "
          << static_cast<int64_t>(insn.b);
      break;
    case PfOp::kMatchCompare:
    case PfOp::kMatchCompareEq:
    case PfOp::kMatchCompareNe:
      oss << "MATCH_COMPARE --v1 " << prog.operands[insn.b].Render() << " --v2 "
          << prog.operands[static_cast<uint32_t>(insn.c)].Render() << " "
          << EqFlag(insn.flags);
      break;
    case PfOp::kMatchInterp:
      oss << "MATCH_INTERP";
      if (!prog.strings[insn.a].empty()) {
        oss << " --script " << prog.strings[insn.a];
      }
      if (insn.aux != 0) {
        oss << " --lang " << LangName(insn.aux);
      }
      break;
    case PfOp::kMatchNative:
      oss << "MATCH_NATIVE " << prog.native_matches[insn.a]->Render();
      break;
    case PfOp::kAccept:
      oss << "ACCEPT";
      break;
    case PfOp::kDrop:
      oss << "DROP";
      break;
    case PfOp::kReturn:
      oss << "RETURN";
      break;
    case PfOp::kContinue:
      oss << "CONTINUE";
      break;
    case PfOp::kJump:
      oss << "JUMP -> ";
      if (insn.a != kPfNoIndex) {
        oss << prog.chains[insn.a].name;
      } else {
        oss << prog.strings[static_cast<uint32_t>(insn.b)] << " (undefined)";
      }
      break;
    case PfOp::kStateSet:
      oss << "STATE_SET --key " << prog.strings[insn.a] << " --value "
          << prog.operands[static_cast<uint32_t>(insn.b)].Render();
      break;
    case PfOp::kStateUnset:
      oss << "STATE_UNSET --key " << prog.strings[insn.a];
      break;
    case PfOp::kLog:
      oss << "LOG";
      if (!prog.strings[insn.a].empty()) {
        oss << " --prefix " << prog.strings[insn.a];
      }
      break;
    case PfOp::kTargetNative:
      oss << "TARGET_NATIVE " << prog.native_targets[insn.a]->Render();
      break;
  }
  return oss.str();
}

// Live/referenced totals for the listing header. A delta-built program
// carries dead records and pool entries superseded by later generations;
// counting only what live rules reference keeps the listing byte-identical
// to a from-scratch relower of the same rule base (for scratch programs the
// referenced counts equal the raw pool sizes, since interning only happens
// on behalf of emitted instructions).
struct LiveCounts {
  size_t rules = 0;
  size_t insns = 0;
  size_t arena_words = 0;
  size_t strings = 0;
  size_t labelsets = 0;
  size_t sids = 0;
  size_t operands = 0;
  size_t native_matches = 0;
  size_t native_targets = 0;
};

LiveCounts CountLive(const PfProgram& prog) {
  LiveCounts lc;
  std::vector<uint8_t> str_seen(prog.strings.size(), 0);
  std::vector<uint8_t> ls_seen(prog.labelsets.size(), 0);
  auto touch_str = [&](uint32_t idx) {
    if (idx < str_seen.size() && str_seen[idx] == 0) {
      str_seen[idx] = 1;
      ++lc.strings;
    }
  };
  auto touch_ls = [&](uint32_t idx) {
    if (idx < ls_seen.size() && ls_seen[idx] == 0) {
      ls_seen[idx] = 1;
      ++lc.labelsets;
      lc.sids += prog.labelsets[idx].len;
    }
  };
  for (const RuleRecord& rec : prog.rules) {
    if (rec.rule == nullptr) {
      continue;  // dead record (superseded by a delta commit)
    }
    ++lc.rules;
    lc.arena_words += rec.end - rec.entry;
    if (rec.jump_name != kPfNoIndex) {
      touch_str(rec.jump_name);
    }
    for (uint32_t pc = rec.entry; pc < rec.end; pc += kPfInsnWords) {
      ++lc.insns;
      const PfInsn insn = prog.Fetch(pc);
      switch (static_cast<PfOp>(insn.op)) {
        case PfOp::kMatchSubject:
        case PfOp::kMatchObject:
          touch_ls(insn.a);
          break;
        case PfOp::kMatchState:
        case PfOp::kMatchStateEq:
        case PfOp::kMatchStateNe:
          touch_str(insn.a);
          if ((insn.flags & kPfHasCmp) != 0) {
            ++lc.operands;  // operands are interned per use, never deduped
          }
          break;
        case PfOp::kMatchCompare:
        case PfOp::kMatchCompareEq:
        case PfOp::kMatchCompareNe:
          lc.operands += 2;
          break;
        case PfOp::kMatchInterp:
        case PfOp::kMatchPhase:
        case PfOp::kStateUnset:
        case PfOp::kLog:
          touch_str(insn.a);
          break;
        case PfOp::kStateSet:
          touch_str(insn.a);
          ++lc.operands;
          break;
        case PfOp::kJump:
          touch_str(static_cast<uint32_t>(insn.b));
          break;
        case PfOp::kMatchNative:
          ++lc.native_matches;  // native pools are per-use, like operands
          break;
        case PfOp::kTargetNative:
          ++lc.native_targets;
          break;
        default:
          break;
      }
    }
  }
  return lc;
}

}  // namespace

std::string DisassemblePfProgram(const PfProgram& prog, const sim::LabelRegistry& labels) {
  std::ostringstream oss;
  const LiveCounts lc = CountLive(prog);
  oss << ";; pf program: chains=" << prog.chains.size() << " rules=" << lc.rules
      << " insns=" << lc.insns << " arena_words=" << lc.arena_words << "\n";
  oss << ";; pools: strings=" << lc.strings << " labelsets=" << lc.labelsets
      << " sids=" << lc.sids << " operands=" << lc.operands
      << " native_matches=" << lc.native_matches
      << " native_targets=" << lc.native_targets << "\n";
  const ClassifierStats cs = ComputeClassifierStats(prog);
  oss << ";; classifier: tables=" << cs.tables << " tuples=" << cs.tuples
      << " max_slice=" << cs.max_slice << " residual=" << cs.residual_rules << "\n";
  if (prog.automata_built) {
    const AutomataStats as = ComputeAutomataStats(prog);
    oss << ";; automata: protocols=" << as.protocols << " keys=" << as.keys
        << " states=" << as.states << " lowered=" << as.lowered_rules
        << " bypass=" << as.bypass_rules << " state_buckets=" << as.state_buckets
        << "\n";
    for (size_t p = 0; p < prog.automaton_protocols.size(); ++p) {
      const AutomatonProtocol& proto = prog.automaton_protocols[p];
      oss << ";;   p" << p << (proto.phase != 0 ? " (phase)" : "")
          << ": states=" << proto.state_count << " keys=";
      for (uint32_t k = 0; k < proto.key_cnt; ++k) {
        const AutomatonKey& ak = prog.automaton_keys[proto.key_off + k];
        if (k != 0) {
          oss << ",";
        }
        oss << prog.strings[ak.name] << "(r" << ak.radix << ")";
      }
      oss << "\n";
    }
  }
  for (const ProgramChain& chain : prog.chains) {
    oss << "chain " << chain.name << " (" << (chain.builtin ? "builtin" : "user")
        << ", policy " << (chain.policy_drop ? "DROP" : "ACCEPT") << ", "
        << chain.rules.size() << " rules";
    if (chain.index_built && chain.ept && !chain.ept->empty()) {
      oss << ", ept-indexed " << chain.ept->size() << " entrypoints";
    }
    oss << ")\n";
    if (chain.op_mask != 0) {
      oss << "  ops:";
      for (size_t opi = 0; opi < sim::kOpCount; ++opi) {
        if ((chain.op_mask >> opi) & 1) {
          oss << " " << sim::OpName(static_cast<sim::Op>(opi));
        }
      }
      oss << "\n";
    }
    // Chain-order rule bodies. Offsets are printed relative to the rule's
    // entry so the listing is invariant under arena relocation.
    std::unordered_map<uint32_t, size_t> chain_pos;  // record idx -> 1-based pos
    for (size_t i = 0; i < chain.rules.size(); ++i) {
      chain_pos[chain.rules[i]] = i + 1;
      const RuleRecord& rec = prog.rules[chain.rules[i]];
      oss << "  rule " << (i + 1) << ":\n";
      for (uint32_t pc = rec.entry; pc < rec.end; pc += kPfInsnWords) {
        char off[16];
        std::snprintf(off, sizeof(off), "%04u", (pc - rec.entry) / kPfInsnWords);
        oss << "    +" << off << " " << RenderInsn(prog, rec, prog.Fetch(pc), labels)
            << "\n";
      }
    }
    // Entrypoint index, in deterministic (dev, ino, offset) order. Rule
    // lists render as chain positions, not record indices.
    if (chain.index_built && chain.ept && !chain.ept->empty()) {
      std::vector<std::pair<EptKey, std::pair<uint32_t, uint32_t>>> keys(chain.ept->begin(),
                                                                         chain.ept->end());
      std::sort(keys.begin(), keys.end(), [](const auto& x, const auto& y) {
        if (x.first.file.dev != y.first.file.dev) {
          return x.first.file.dev < y.first.file.dev;
        }
        if (x.first.file.ino != y.first.file.ino) {
          return x.first.file.ino < y.first.file.ino;
        }
        return x.first.offset < y.first.offset;
      });
      for (const auto& [key, slice] : keys) {
        oss << "  ept ";
        // Render the entrypoint via a member rule's program path (stable
        // across kernels, unlike dev/ino).
        std::string path = "?";
        if (slice.second > 0) {
          const RuleRecord& rec = prog.rules[prog.entries[slice.first]];
          if (rec.rule != nullptr && !rec.rule->program.empty()) {
            path = rec.rule->program;
          }
        }
        oss << path << "+0x" << std::hex << key.offset << std::dec << " -> rules";
        for (uint32_t i = 0; i < slice.second; ++i) {
          oss << " " << chain_pos[prog.entries[slice.first + i]];
        }
        oss << "\n";
      }
    }
  }
  return oss.str();
}

}  // namespace pf::core
