// Process Firewall rule representation.
//
// A rule mirrors an iptables rule (paper Table 3): default matches (subject
// label, object label, entrypoint, operation, program, resource identifier),
// extensible match modules (-m), and a target (-j). Rules are deny rules
// followed by a default allow (paper §4.1), which keeps traversal order
// insensitive and makes entrypoint-chain indexing sound.
#ifndef SRC_CORE_RULE_H_
#define SRC_CORE_RULE_H_

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/core/packet.h"
#include "src/sim/label.h"
#include "src/sim/mac_policy.h"

namespace pf::core {

class Engine;
class ProgramBuilder;  // program.h
class SymbolicSink;    // symbolize.h

using CtxMask = uint32_t;

// A set of labels with optional negation and the SYSHIGH keyword
// (expanded against the MAC policy at match time, so rules stay valid as the
// policy evolves — compare paper §5.2).
struct LabelSet {
  std::vector<sim::Sid> sids;
  bool syshigh = false;
  bool negate = false;
  bool wildcard = true;  // unset: matches anything

  bool MatchesSubject(sim::Sid sid, const sim::MacPolicy& policy) const;
  bool MatchesObject(sim::Sid sid, const sim::MacPolicy& policy) const;
  std::string Render(const sim::LabelRegistry& labels) const;

 private:
  bool InSet(sim::Sid sid) const;
};

// Extensible match module instance (the kernel half; the "userspace half"
// is its factory's option parser in pftables.cc).
class MatchModule {
 public:
  virtual ~MatchModule() = default;
  virtual std::string_view Name() const = 0;
  // Context fields that must be collected before Matches() runs.
  virtual CtxMask Needs() const { return 0; }
  virtual bool Matches(Packet& pkt, Engine& engine) const = 0;
  // True when Matches() is a pure function of the engine's verdict-cache key
  // (ruleset generation, op, subject sid, object identity + generation + sid,
  // MAC-policy epoch, entrypoint image + offset — see engine.h). Modules that
  // read anything else — per-task STATE, syscall arguments, signal info, the
  // full stack, interpreter frames, symlink targets, owner uids — must keep
  // the conservative default of false, or stale cached verdicts could be
  // served after the un-keyed input changes.
  virtual bool CacheableByKey() const { return false; }
  // Subsumption hook for the static analyzer (src/analysis): true when this
  // module's accepted packet set is a superset of `other`'s — every packet
  // `other` matches, this module matches too. The default — exact equality
  // of module name and rendered options — is always sound; modules whose
  // option space has a partial order (e.g. INTERP script suffixes) override
  // it to prove more shadowing.
  virtual bool Subsumes(const MatchModule& other) const {
    return Name() == other.Name() && Render() == other.Render();
  }
  // Lowering hook for the compiled-program form (program.h): emit the
  // instruction(s) equivalent to Matches() and return true. The default —
  // return false — makes the lowering pass emit a kMatchNative escape that
  // dispatches back into this object, so extension modules work unmodified.
  virtual bool Lower(ProgramBuilder&) const { return false; }
  // Symbolic-lowering hook for the decision-space analyzer
  // (src/analysis/symbolic), alongside Lower()/Subsumes(): describe the
  // accepted set as per-dimension constraints on the sink and return true.
  // The default — return false — makes the analyzer model the module as an
  // uninterpreted boolean dimension keyed by Name()+Render(): every region
  // is split on both outcomes, which stays sound (extension modules work
  // unmodified) but proves less shadowing and yields abstract witnesses.
  virtual bool Symbolize(SymbolicSink&) const { return false; }
  virtual std::string Render() const = 0;
};

// Target verdicts.
enum class TargetKind {
  kAccept,    // allow the access, stop traversal
  kDrop,      // deny the access, stop traversal
  kContinue,  // side-effect-only target (LOG, STATE --set): keep going
  kReturn,    // pop to the calling chain
  kJump,      // push the named chain
};

class TargetModule {
 public:
  virtual ~TargetModule() = default;
  virtual std::string_view Name() const = 0;
  virtual CtxMask Needs() const { return 0; }
  // True when Fire() is deterministic in the verdict-cache key and free of
  // side effects. STATE writes and LOG records are side effects (a cache hit
  // would silently skip them); JUMP is cacheable itself — the jumped-to
  // chain is folded in transitively by Engine::CommitRuleset.
  virtual bool CacheableByKey() const { return false; }
  // The verdict kind Fire() produces, when it is statically determinable
  // (ACCEPT/DROP/RETURN/JUMP and side-effect-only targets always return the
  // same kind). Custom targets with data-dependent verdicts keep the nullopt
  // default and the static analyzer treats them conservatively — they
  // neither shadow later rules nor count as dead when shadowed.
  virtual std::optional<TargetKind> StaticKind() const { return std::nullopt; }
  // Lowering hook, mirroring MatchModule::Lower: emit the terminal/effect
  // instruction(s) for Fire() and return true, or keep the default and the
  // lowering pass emits a kTargetNative escape.
  virtual bool Lower(ProgramBuilder&) const { return false; }
  // Fires the target; for kJump the chain name is in jump_chain().
  virtual TargetKind Fire(Packet& pkt, Engine& engine) const = 0;
  virtual const std::string& jump_chain() const {
    static const std::string kEmpty;
    return kEmpty;
  }
  virtual std::string Render() const = 0;
};

struct Rule {
  // --- default matches ---
  std::optional<sim::Op> op;                // -o
  LabelSet subject;                         // -s
  LabelSet object;                          // -d
  std::string program;                      // -p (path as written)
  sim::FileId program_file;                 // compiled identity
  std::optional<uint64_t> entrypoint;       // -i (binary-relative PC)
  std::optional<sim::Ino> ino;              // --ino (resource identifier)

  std::vector<std::unique_ptr<MatchModule>> matches;
  std::unique_ptr<TargetModule> target;     // never null after compilation

  // Context requirements of all parts (computed once at install).
  CtxMask needs = 0;

  // Diagnostics / counters. Relaxed atomics: rules are evaluated from many
  // worker threads concurrently, and the counters are shared between the
  // staging rule base and every published snapshot (ruleset.h). `eval_ns`
  // accumulates only while per-rule tracing (Event::kRule) is enabled on the
  // compiled evaluator — it is attribution, not an always-on cost.
  std::string source;      // original rule text
  mutable std::atomic<uint64_t> evals{0};
  mutable std::atomic<uint64_t> hits{0};
  mutable std::atomic<uint64_t> eval_ns{0};

  bool has_program() const { return program_file.ino != sim::kInvalidIno; }
  bool IndexableByEntrypoint() const { return has_program() && entrypoint.has_value(); }

  // Verdict-cache purity of this rule in isolation. The default matches only
  // read key fields, so the rule is cacheable iff every -m module and the
  // target are. Chain-level purity additionally requires every JUMP-reachable
  // rule to be cacheable (computed at commit time).
  bool CacheableByKey() const {
    for (const auto& match : matches) {
      if (!match->CacheableByKey()) {
        return false;
      }
    }
    return target == nullptr || target->CacheableByKey();
  }
};

}  // namespace pf::core

#endif  // SRC_CORE_RULE_H_
