// Minimal status type for the pftables front-end (rule parsing/validation).
#ifndef SRC_CORE_STATUS_H_
#define SRC_CORE_STATUS_H_

#include <string>
#include <utility>

namespace pf::core {

class Status {
 public:
  Status() = default;  // OK
  static Status Ok() { return Status(); }
  static Status Error(std::string msg) {
    Status s;
    s.ok_ = false;
    s.msg_ = std::move(msg);
    return s;
  }

  bool ok() const { return ok_; }
  const std::string& message() const { return msg_; }

 private:
  bool ok_ = true;
  std::string msg_;
};

}  // namespace pf::core

#endif  // SRC_CORE_STATUS_H_
