#include "src/core/engine.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <set>

#include "src/core/automata.h"
#include "src/core/modules.h"
#include "src/core/verify.h"
#include "src/sim/task.h"

namespace pf::core {

namespace {
constexpr CtxMask kAllCtx = CtxBit(Ctx::kObject) | CtxBit(Ctx::kLinkTarget) |
                            CtxBit(Ctx::kAdversaryAccess) | CtxBit(Ctx::kEntrypoint) |
                            CtxBit(Ctx::kUserStack) | CtxBit(Ctx::kInterpStack);

constexpr auto kRelaxed = std::memory_order_relaxed;

// The decision-scratch machinery below serves two observers: the tracer and
// the audit pipeline. It is compiled in when either is, and compiled out —
// along with every gate that reads it — only when both are off.
constexpr bool kObsCompiledIn = trace::kTraceCompiledIn || audit::kAuditCompiledIn;

// Per-decision tracing scratch, installed on the stack by Authorize and
// published through a thread-local pointer so the stages it calls into
// (EnsureContext, the compiled evaluator) can attribute their cost without
// any signature changes. Null whenever the current decision is not being
// traced — every tracepoint below gates on that single TLS load, and the
// whole mechanism compiles out under PF_NO_TRACE.
struct DecisionScratch {
  uint64_t ctx_ns = 0;       // summed EnsureContext time of this decision
  int32_t chain_id = -1;     // verdict-producing rule, compiled path only
  int32_t rule_index = -1;
  uint16_t worker = 0;
  uint8_t op = 0;
  bool trace_rules = false;      // emit Event::kRule per verdict + rule ns
  bool trace_ctx = false;        // emit Event::kCtxFetch per fetch
  bool time_ctx = false;         // accumulate ctx_ns (clock reads per fetch)
  pf::trace::TraceHub* hub = nullptr;
};

thread_local DecisionScratch* g_scratch = nullptr;

// Stateful-effects capture (engine.h NoteRuleHit/NoteDictDelta), armed by
// Authorize around a miss traversal it intends to cache with automaton state
// in the key. `own_mutations` counts the dictionary writes this traversal
// performed itself; comparing the task's dict_seq across the traversal
// against it proves no concurrent writer interleaved (in which case the
// capture would describe a mixed history and must not be inserted).
struct EffectsCapture {
  StatefulEffects fx;
  uint64_t own_mutations = 0;
};

thread_local EffectsCapture* g_capture = nullptr;

// Per-decision audit scratch, armed by Authorize whenever the audit pipeline
// is enabled. Security events that surface mid-traversal — LOG-target hits,
// `@phase` transitions — are parked here (fixed-size, overflow-counted) and
// materialized into AuditRecords in the decision epilogue, where the serving
// tier, timing, and packet provenance are all known. Null whenever the
// current decision is not audited; every hook below gates on that single TLS
// load, and the mechanism compiles out under PF_AUDIT=OFF.
struct AuditScratch {
  static constexpr uint32_t kMaxPending = 4;

  // LOG hits: the compiled kLog handler deposits its RuleRecord identity
  // here just before EmitLog; the legacy walker leaves -1 (same attribution
  // convention as tracing).
  int32_t cur_chain = -1;
  int32_t cur_rule = -1;
  int32_t log_chain[kMaxPending];
  int32_t log_rule[kMaxPending];
  uint32_t log_count = 0;

  // @phase transitions observed by the dictionary write sites.
  int64_t phase_from[kMaxPending];
  int64_t phase_to[kMaxPending];
  uint32_t phase_count = 0;

  AuditScratch* prev = nullptr;

  void NoteLog() {
    if (log_count < kMaxPending) {
      log_chain[log_count] = cur_chain;
      log_rule[log_count] = cur_rule;
    }
    ++log_count;
    cur_chain = -1;
    cur_rule = -1;
  }
  void NotePhase(int64_t from, int64_t to) {
    if (phase_count < kMaxPending) {
      phase_from[phase_count] = from;
      phase_to[phase_count] = to;
    }
    ++phase_count;
  }
};

thread_local AuditScratch* g_audit = nullptr;
}  // namespace

void NoteRuleHit(const Rule* rule) {
  if (EffectsCapture* cap = g_capture) {
    cap->fx.hits.push_back(rule);
  }
}

void NoteDictDelta(const std::string& key, bool unset, int64_t value) {
  if (EffectsCapture* cap = g_capture) {
    cap->fx.deltas.push_back(DictDelta{key, unset, value});
    ++cap->own_mutations;
  }
}

void NotePhaseTransition(int64_t from, int64_t to) {
  if constexpr (audit::kAuditCompiledIn) {
    if (AuditScratch* as = g_audit) {
      as->NotePhase(from, to);
    }
  } else {
    (void)from;
    (void)to;
  }
}

bool IsOutputOp(sim::Op op) {
  switch (op) {
    case sim::Op::kFileWrite:
    case sim::Op::kFileSetattr:
    case sim::Op::kFileCreate:
    case sim::Op::kFileUnlink:
    case sim::Op::kDirAddName:
    case sim::Op::kDirRemoveName:
    case sim::Op::kSocketBind:
    case sim::Op::kSocketSetattr:
      return true;
    default:
      return false;
  }
}

bool IsCreateOp(sim::Op op) {
  return op == sim::Op::kFileCreate || op == sim::Op::kDirAddName ||
         op == sim::Op::kSocketBind;
}

size_t WorkerIndex() {
  static std::atomic<size_t> next{0};
  thread_local size_t index = next.fetch_add(1, kRelaxed);
  return index;
}

// --- TaskStateStore ----------------------------------------------------------

PfTaskState& TaskStateStore::GetOrCreate(sim::Pid pid) {
  Shard& shard = ShardFor(pid);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto& slot = shard.map[pid];
  if (!slot) {
    slot = std::make_shared<PfTaskState>();
  }
  return *slot;
}

std::shared_ptr<PfTaskState> TaskStateStore::Find(sim::Pid pid) {
  Shard& shard = ShardFor(pid);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(pid);
  return it == shard.map.end() ? nullptr : it->second;
}

void TaskStateStore::Put(sim::Pid pid, std::shared_ptr<PfTaskState> state) {
  Shard& shard = ShardFor(pid);
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.map[pid] = std::move(state);
}

void TaskStateStore::Erase(sim::Pid pid) {
  Shard& shard = ShardFor(pid);
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.map.erase(pid);
}

size_t TaskStateStore::size() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.map.size();
  }
  return n;
}

// --- Engine wiring -----------------------------------------------------------

Engine::Engine(sim::Kernel& kernel, EngineConfig config)
    : kernel_(kernel), config_(config) {
  // Publish generation 1 (the empty builtin chains). An empty program always
  // verifies, so the commit cannot fail here.
  (void)CommitRuleset();
}

Engine* InstallProcessFirewall(sim::Kernel& kernel, EngineConfig config) {
  auto engine = std::make_unique<Engine>(kernel, config);
  Engine* raw = engine.get();
  size_t slot = kernel.AddModule(std::move(engine));
  raw->set_slot(slot);
  return raw;
}

const CompiledChain* CompiledRuleset::FindCompiled(const std::string& chain) const {
  const Chain* c = rules.filter().Find(chain);
  if (c == nullptr) {
    return nullptr;
  }
  auto it = compiled.find(c);
  return it == compiled.end() ? nullptr : &it->second;
}

namespace {

// Pass 1 for one chain: per-(chain, op) dispatch buckets with each bucket's
// own rules' context-mask union and purity, plus the distinct JUMP targets
// the closure pass iterates. Shared by the full and the incremental compile
// (which recomputes only dirty chains and copies the rest).
void BuildChainBuckets(const Chain& chain, CompiledChain& cc) {
  cc.op_mask = 0;
  for (size_t op = 0; op < sim::kOpCount; ++op) {
    OpBucket& b = cc.ops[op];
    b = OpBucket{};
    for (const auto& rule : chain.rules()) {
      if (rule->op && static_cast<size_t>(*rule->op) != op) {
        continue;  // the op precheck can never pass; drop at compile time
      }
      b.all.push_back(rule.get());
      b.needs |= rule->needs;
      b.cacheable = b.cacheable && rule->CacheableByKey();
      if (chain.index_built() && rule->IndexableByEntrypoint()) {
        b.has_indexed = true;
      } else {
        b.plain.push_back(rule.get());
      }
      const std::string& jump = rule->target->jump_chain();
      if (!jump.empty()) {
        b.jump_targets.push_back(jump);
      }
    }
    std::sort(b.jump_targets.begin(), b.jump_targets.end());
    b.jump_targets.erase(std::unique(b.jump_targets.begin(), b.jump_targets.end()),
                         b.jump_targets.end());
    b.base_needs = b.needs;
    b.base_cacheable = b.cacheable;
    if (!b.all.empty()) {
      cc.op_mask |= 1ull << op;
    }
  }
}

// Pass 2: close needs/cacheable over JUMP edges to a monotone fixpoint.
// Iteration (rather than DFS memoization) keeps mutually-recursive chains
// correct: a bucket's final value folds every reachable rule, exactly the
// set the depth-limited runtime can evaluate. The deduplicated edge lists
// make one round O(edges), not O(rules).
void CloseBucketPurity(Table& filter, std::map<const Chain*, CompiledChain>& compiled) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [chain_ptr, cc] : compiled) {
      for (size_t op = 0; op < sim::kOpCount; ++op) {
        OpBucket& b = cc.ops[op];
        for (const std::string& jump : b.jump_targets) {
          const Chain* next = filter.Find(jump);
          if (next == nullptr) {
            continue;
          }
          const OpBucket& nb = compiled[next].ops[op];
          CtxMask needs = b.needs | nb.needs;
          bool cacheable = b.cacheable && nb.cacheable;
          if (needs != b.needs || cacheable != b.cacheable) {
            b.needs = needs;
            b.cacheable = cacheable;
            changed = true;
          }
        }
      }
    }
  }
}

}  // namespace

std::shared_ptr<CompiledRuleset> Engine::CompileRuleset() const {
  auto snap = std::make_shared<CompiledRuleset>();
  snap->rules = ruleset_;  // shares the Rule objects, copies chain structure
  snap->input = snap->rules.filter().Find("input");
  snap->output = snap->rules.filter().Find("output");
  snap->create = snap->rules.filter().Find("create");
  snap->syscallbegin = snap->rules.filter().Find("syscallbegin");

  // --- commit-time compilation ---
  // Pass 1: per-(chain, op) dispatch buckets.
  Table& filter = snap->rules.filter();
  for (auto& [name, chain] : filter.chains()) {
    CompiledChain& cc = snap->compiled[&chain];
    cc.chain = &chain;
    BuildChainBuckets(chain, cc);
  }
  // Pass 2: transitive closure over JUMP edges.
  CloseBucketPurity(filter, snap->compiled);
  snap->cc_input = snap->FindCompiled("input");
  snap->cc_output = snap->FindCompiled("output");
  snap->cc_create = snap->FindCompiled("create");
  snap->cc_syscallbegin = snap->FindCompiled("syscallbegin");
  // Pass 3: lower the whole generation into the arena-packed program form
  // (compile.cc) — re-points the buckets just built at entry-table slices.
  LowerProgram(*snap);
  // Pass 3.5: STATE-protocol automaton lowering (automata.cc). Gated so the
  // NOAUTOMATA bench rung measures the baseline compile; with the pass off,
  // program.automata_built stays false and every consumer ignores the
  // astate fields.
  if (config_.automata) {
    BuildAutomata(*snap);
  }
  // Pass 4: the load-time verifier (verify.h). The evaluator trusts every
  // arena fetch; this pass is where that trust is earned. CommitRuleset
  // refuses to publish on errors.
  if (config_.verify_programs) {
    const auto t0 = std::chrono::steady_clock::now();
    VerifyResult vr = VerifyProgram(snap->program);
    snap->verify_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    snap->verified = vr.ok();
    snap->verify_report = std::move(vr.report);
  }
  return snap;
}

bool Engine::CanDeltaCompile(const CompiledRuleset& prev,
                             std::vector<std::string>* dirty) const {
  if (!config_.incremental_commits) {
    return false;
  }
  // Delta verification assumes the base program's untouched prefix was
  // proven when it published; never build on an unverified base.
  if (config_.verify_programs && !prev.verified) {
    return false;
  }
  // Compaction threshold: once half the arena is dead, relower from scratch
  // (bounds memory to 2x the live program across any edit history).
  const PfProgram& pp = prev.program;
  if (pp.dead_arena_words * 2 > pp.arena.size()) {
    return false;
  }
  // Chain ids are positional: any change to the chain-name set reshuffles
  // them, so only same-set edits take the delta path.
  const auto& staged = ruleset_.filter().chains();
  const auto& base = prev.rules.filter().chains();
  if (staged.size() != base.size()) {
    return false;
  }
  auto bit = base.begin();
  for (const auto& [name, chain] : staged) {
    if (bit->first != name) {
      return false;
    }
    // edit_seq covers rule-list and policy mutations; index_built is derived
    // state (pftables reindexes per command) and is compared separately.
    if (chain.edit_seq() != bit->second.edit_seq() ||
        chain.index_built() != bit->second.index_built()) {
      dirty->push_back(name);
    }
    ++bit;
  }
  return true;
}

std::shared_ptr<CompiledRuleset> Engine::CompileRulesetDelta(
    const CompiledRuleset& prev, const std::vector<std::string>& dirty) const {
  // Recycle the retired generation's allocations when nothing still pins it:
  // the copy-assignments below then reuse its vector pages and its map/chain
  // nodes (libstdc++ recycles nodes on container copy-assignment) instead of
  // faulting in a fresh ~40MB working set per commit. The compiled map and
  // derived pointers are keyed by the previous generation's chain addresses,
  // so they are cleared rather than reused.
  std::shared_ptr<CompiledRuleset> snap;
  {
    std::lock_guard<std::mutex> lock(commit_mu_);
    if (retired_ && retired_.use_count() == 1) {
      snap = std::const_pointer_cast<CompiledRuleset>(retired_);
      retired_.reset();
    }
  }
  if (snap == nullptr) {
    snap = std::make_shared<CompiledRuleset>();
  } else {
    snap->compiled.clear();
    snap->verify_report = analysis::AnalysisReport();
    snap->verified = false;
    snap->verify_ns = 0;
  }
  snap->rules = ruleset_;
  snap->input = snap->rules.filter().Find("input");
  snap->output = snap->rules.filter().Find("output");
  snap->create = snap->rules.filter().Find("create");
  snap->syscallbegin = snap->rules.filter().Find("syscallbegin");

  Table& filter = snap->rules.filter();
  std::set<std::string> dirty_set(dirty.begin(), dirty.end());
  // Pass 1: recompute buckets for dirty chains; copy the clean chains' from
  // the base generation. Rule objects are shared between generations, so a
  // copied bucket's pointer lists stay valid; needs/cacheable reset to their
  // chain-local base values because the closure (whose inputs may include a
  // dirty chain) reruns from scratch.
  for (auto& [name, chain] : filter.chains()) {
    CompiledChain& cc = snap->compiled[&chain];
    if (dirty_set.count(name) == 0) {
      cc = prev.compiled.at(prev.rules.filter().Find(name));
      cc.chain = &chain;
      for (size_t op = 0; op < sim::kOpCount; ++op) {
        cc.ops[op].needs = cc.ops[op].base_needs;
        cc.ops[op].cacheable = cc.ops[op].base_cacheable;
      }
    } else {
      cc.chain = &chain;
      BuildChainBuckets(chain, cc);
    }
  }
  CloseBucketPurity(filter, snap->compiled);
  snap->cc_input = snap->FindCompiled("input");
  snap->cc_output = snap->FindCompiled("output");
  snap->cc_create = snap->FindCompiled("create");
  snap->cc_syscallbegin = snap->FindCompiled("syscallbegin");
  // Pass 3: splice — copy the base program, kill the dirty chains' records,
  // append their relowered bodies and tables (compile.cc).
  LowerProgramDelta(*snap, prev.program, dirty);
  // Pass 3.5: delta automaton lowering — reclassifies only the dirty chains
  // when their STATE facts are unchanged, full rebuild otherwise.
  if (config_.automata) {
    BuildAutomataDelta(*snap, dirty);
  }
  // Pass 4: delta verification. The untouched prefix was proven when the
  // base generation published and the splice never rewrites it (dead
  // marking only clears RuleRecord::rule), so the verifier re-checks the
  // appended records, the rebuilt chains' dispatch tables, and the global
  // properties (arena alignment, jump-depth proof) that span generations.
  if (config_.verify_programs) {
    const auto t0 = std::chrono::steady_clock::now();
    VerifyOptions opts;
    opts.delta = true;
    opts.from_record = static_cast<uint32_t>(prev.program.rules.size());
    for (const std::string& name : dirty_set) {
      opts.recheck_chains.push_back(snap->program.chain_ids.at(name));
    }
    VerifyResult vr = VerifyProgram(snap->program, opts);
    snap->verify_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    snap->verified = vr.ok();
    snap->verify_report = std::move(vr.report);
  }
  return snap;
}

Status Engine::CommitRuleset() {
  std::shared_ptr<const CompiledRuleset> prev;
  {
    std::lock_guard<std::mutex> lock(commit_mu_);
    prev = published_;
  }
  std::vector<std::string> dirty;
  const bool delta = prev != nullptr && CanDeltaCompile(*prev, &dirty);
  std::shared_ptr<CompiledRuleset> snap =
      delta ? CompileRulesetDelta(*prev, dirty) : CompileRuleset();
  if (config_.verify_programs && !snap->verified) {
    // Abort the publish: hook evaluation keeps serving the previous
    // generation, exactly as if the commit never happened. (The staging
    // RuleSet keeps the caller's edit — pftables rolls it back when it holds
    // a --check backup.)
    return Status::Error("program verification failed:\n" +
                         snap->verify_report.RenderText());
  }
  {
    std::lock_guard<std::mutex> lock(commit_mu_);
    snap->generation = generation_.load(kRelaxed) + 1;
    // Keep the generation being unpublished for allocation recycling (see
    // retired_). The generation it displaces is freed here if unpinned.
    retired_ = std::move(published_);
    published_ = std::move(snap);
    generation_.store(published_->generation, std::memory_order_release);
  }
  (delta ? delta_commits_ : full_commits_).fetch_add(1, kRelaxed);
  // Entries of dead generations are unreachable by key; clear them out so
  // frequent commits do not pin stale verdicts in memory.
  vcache_.Clear();
  return Status::Ok();
}

const CompiledRuleset& Engine::PinRuleset(std::shared_ptr<const CompiledRuleset>* hold) {
  const size_t index = WorkerIndex();
  if (index < kMaxWorkers) {
    WorkerSlot& w = workers_[index];
    if (w.generation != generation_.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(commit_mu_);
      w.snap = published_;
      w.generation = w.snap->generation;
      StatsLocal().ruleset_refreshes.fetch_add(1, kRelaxed);
    }
    return *w.snap;
  }
  // Workers beyond the slot capacity fall back to pinning via `hold`.
  std::lock_guard<std::mutex> lock(commit_mu_);
  *hold = published_;
  return **hold;
}

// --- VerdictCache ------------------------------------------------------------

std::optional<CachedVerdict> VerdictCache::Lookup(const VerdictKey& key,
                                                  size_t hash) const {
  const Shard& shard = shards_[hash & (kShards - 1)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    return std::nullopt;
  }
  return it->second;  // copies bool + one shared_ptr ref
}

void VerdictCache::Insert(const VerdictKey& key, size_t hash, CachedVerdict verdict) {
  Shard& shard = shards_[hash & (kShards - 1)];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.map.size() >= kMaxPerShard) {
    shard.map.clear();  // memo, not truth: dump the shard and let it refill
  }
  shard.map[key] = std::move(verdict);
}

void VerdictCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
  }
}

size_t VerdictCache::size() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.map.size();
  }
  return n;
}

EngineStatsBlock& Engine::StatsLocal() {
  return stats_blocks_[WorkerIndex() & (kStatsBlocks - 1)];
}

EngineStats Engine::stats() const {
  EngineStats out;
  const uint64_t gen_before = stats_gen_.load(std::memory_order_acquire);
  for (const EngineStatsBlock& b : stats_blocks_) {
    out.invocations += b.invocations.load(kRelaxed);
    out.drops += b.drops.load(kRelaxed);
    out.audited_drops += b.audited_drops.load(kRelaxed);
    out.rules_evaluated += b.rules_evaluated.load(kRelaxed);
    out.ept_chain_hits += b.ept_chain_hits.load(kRelaxed);
    out.unwinds += b.unwinds.load(kRelaxed);
    out.unwind_cache_hits += b.unwind_cache_hits.load(kRelaxed);
    out.ruleset_refreshes += b.ruleset_refreshes.load(kRelaxed);
    out.vcache_hits += b.vcache_hits.load(kRelaxed);
    out.vcache_misses += b.vcache_misses.load(kRelaxed);
    out.vcache_bypasses += b.vcache_bypasses.load(kRelaxed);
    out.vcache_state_hits += b.vcache_state_hits.load(kRelaxed);
    out.vcache_state_misses += b.vcache_state_misses.load(kRelaxed);
    for (size_t i = 0; i < out.vcache_bypass_causes.size(); ++i) {
      out.vcache_bypass_causes[i] += b.vcache_bypass_causes[i].load(kRelaxed);
    }
    for (size_t i = 0; i < out.ctx_fetches.size(); ++i) {
      out.ctx_fetches[i] += b.ctx_fetches[i].load(kRelaxed);
    }
  }
  out.trace_records = trace_.records();
  out.trace_drops = trace_.drops();
  out.audit_emitted = audit_.emitted();
  out.audit_records = audit_.records();
  out.audit_suppressed = audit_.suppressed();
  out.audit_ring_drops = audit_.ring_drops();
  const uint64_t gen_after = stats_gen_.load(std::memory_order_acquire);
  out.stats_generation = gen_after;
  out.torn = (gen_after & 1) != 0 || gen_after != gen_before;
  return out;
}

void Engine::ResetStats() {
  BeginCounterMutation();
  for (EngineStatsBlock& b : stats_blocks_) {
    b.invocations.store(0, kRelaxed);
    b.drops.store(0, kRelaxed);
    b.audited_drops.store(0, kRelaxed);
    b.rules_evaluated.store(0, kRelaxed);
    b.ept_chain_hits.store(0, kRelaxed);
    b.unwinds.store(0, kRelaxed);
    b.unwind_cache_hits.store(0, kRelaxed);
    b.ruleset_refreshes.store(0, kRelaxed);
    b.vcache_hits.store(0, kRelaxed);
    b.vcache_misses.store(0, kRelaxed);
    b.vcache_bypasses.store(0, kRelaxed);
    b.vcache_state_hits.store(0, kRelaxed);
    b.vcache_state_misses.store(0, kRelaxed);
    for (auto& c : b.vcache_bypass_causes) {
      c.store(0, kRelaxed);
    }
    for (auto& c : b.ctx_fetches) {
      c.store(0, kRelaxed);
    }
  }
  EndCounterMutation();
}

// --- per-task state ----------------------------------------------------------

PfTaskState& Engine::TaskState(sim::Task& task) { return states_.GetOrCreate(task.pid); }

void Engine::OnTaskExit(sim::Task& task) { states_.Erase(task.pid); }

void Engine::OnTaskFork(sim::Task& parent, sim::Task& child) {
  // The STATE dictionary follows the process across fork (context caches do
  // not: the child's first access re-unwinds its own stack).
  auto parent_state = states_.Find(parent.pid);
  if (!parent_state) {
    return;
  }
  auto state = std::make_shared<PfTaskState>();
  {
    std::lock_guard<std::mutex> lock(parent_state->mu);
    state->dict = parent_state->dict;
  }
  states_.Put(child.pid, std::move(state));
}

void Engine::OnTaskExec(sim::Task& task) {
  // execve replaces the image: cached unwinds describe a dead address space.
  // (The serial check would also reject them on the next syscall; dropping
  // them here keeps even same-syscall hooks from seeing pre-exec frames.)
  auto state = states_.Find(task.pid);
  if (!state) {
    return;
  }
  state->stack.store(nullptr, std::memory_order_release);
  state->interp.store(nullptr, std::memory_order_release);
}

// --- context modules ---------------------------------------------------------

void Engine::FetchObject(Packet& pkt) {
  StatsLocal().ctx_fetches[static_cast<size_t>(Ctx::kObject)].fetch_add(1, kRelaxed);
  sim::AccessRequest& req = *pkt.req;
  if (req.inode != nullptr) {
    pkt.has_object = true;
    pkt.object_sid = req.inode->sid;
    pkt.object_id = req.id;
    pkt.object_generation = req.inode->generation;
    pkt.object_owner = req.inode->uid;
  }
  pkt.Mark(Ctx::kObject);
}

void Engine::FetchLinkTarget(Packet& pkt) {
  StatsLocal().ctx_fetches[static_cast<size_t>(Ctx::kLinkTarget)].fetch_add(1, kRelaxed);
  sim::AccessRequest& req = *pkt.req;
  if (req.op == sim::Op::kLnkFileRead && req.inode != nullptr) {
    pkt.link_owner = req.inode->uid;
    if (req.link_target != nullptr) {
      pkt.has_link_target = true;
      pkt.link_target_owner = req.link_target->uid;
      pkt.link_target_sid = req.link_target->sid;
      pkt.link_target_id = req.link_target->id();
    }
  }
  pkt.Mark(Ctx::kLinkTarget);
}

void Engine::FetchAdversaryAccess(Packet& pkt) {
  if (!pkt.Has(Ctx::kObject)) {
    FetchObject(pkt);
  }
  StatsLocal().ctx_fetches[static_cast<size_t>(Ctx::kAdversaryAccess)].fetch_add(1,
                                                                                kRelaxed);
  if (pkt.has_object) {
    const sim::MacPolicy& pol = kernel_.policy();
    pkt.adversary_writable = pol.AdversaryWritable(pkt.object_sid);
    pkt.adversary_readable = pol.AdversaryReadable(pkt.object_sid);
  }
  pkt.Mark(Ctx::kAdversaryAccess);
}

void Engine::FetchStack(Packet& pkt) {
  EngineStatsBlock& sb = StatsLocal();
  sb.ctx_fetches[static_cast<size_t>(Ctx::kEntrypoint)].fetch_add(1, kRelaxed);
  sim::Task& task = *pkt.req->task;
  PfTaskState& state = TaskState(task);
  std::shared_ptr<const StackSnapshot> snap;
  if (config_.cache_context) {
    snap = state.stack.load(std::memory_order_acquire);
    if (snap && snap->serial != task.syscall_count) {
      snap = nullptr;  // stale: belongs to an earlier system call
    }
  }
  if (snap) {
    sb.unwind_cache_hits.fetch_add(1, kRelaxed);
  } else {
    sb.unwinds.fetch_add(1, kRelaxed);
    UnwindResult res = UnwindUserStack(task);
    auto fresh = std::make_shared<StackSnapshot>();
    fresh->serial = task.syscall_count;
    fresh->frames = std::move(res.frames);
    fresh->status = res.status;
    snap = std::move(fresh);
    // Single publication (no check/unlock/relock round-trip): a concurrent
    // refresh for the same syscall stores an equally-valid snapshot.
    state.stack.store(snap, std::memory_order_release);
  }
  pkt.stack = &snap->frames;
  pkt.stack_status = snap->status;
  if (snap->status != UnwindStatus::kAborted && !snap->frames.empty()) {
    pkt.entrypoint_valid = true;
    pkt.entrypoint = snap->frames.front();
  }
  pkt.stack_hold = std::move(snap);
  pkt.Mark(Ctx::kEntrypoint);
  pkt.Mark(Ctx::kUserStack);
}

void Engine::FetchInterp(Packet& pkt) {
  StatsLocal().ctx_fetches[static_cast<size_t>(Ctx::kInterpStack)].fetch_add(1, kRelaxed);
  sim::Task& task = *pkt.req->task;
  PfTaskState& state = TaskState(task);
  std::shared_ptr<const InterpSnapshot> snap;
  if (config_.cache_context) {
    snap = state.interp.load(std::memory_order_acquire);
    if (snap && snap->serial != task.syscall_count) {
      snap = nullptr;
    }
  }
  if (!snap) {
    InterpUnwindResult res = UnwindInterpStack(task);
    auto fresh = std::make_shared<InterpSnapshot>();
    fresh->serial = task.syscall_count;
    fresh->frames = std::move(res.frames);
    fresh->status = res.status;
    snap = std::move(fresh);
    state.interp.store(snap, std::memory_order_release);
  }
  pkt.interp = &snap->frames;
  pkt.interp_status = snap->status;
  pkt.interp_hold = std::move(snap);
  pkt.Mark(Ctx::kInterpStack);
}

void Engine::EnsureContext(Packet& pkt, CtxMask mask) {
  CtxMask missing = mask & ~pkt.have;
  if (missing == 0) {
    return;
  }
  // Context-fetch tracepoint: only decisions being traced (or audited) carry
  // a scratch, so the unobserved hot path pays one thread-local load past
  // this point.
  // Timing is opt-in per decision (tracer active, or audit with
  // Config::timed): an armed-but-untimed audit pipeline must not put two
  // clock reads on every allow-path context fetch.
  uint64_t t0 = 0;
  if constexpr (kObsCompiledIn) {
    if (g_scratch != nullptr && g_scratch->time_ctx) {
      t0 = trace::NowNs();
    }
  }
  if (missing & CtxBit(Ctx::kObject)) {
    FetchObject(pkt);
  }
  if (missing & CtxBit(Ctx::kLinkTarget)) {
    FetchLinkTarget(pkt);
  }
  if (missing & CtxBit(Ctx::kAdversaryAccess)) {
    FetchAdversaryAccess(pkt);
  }
  if (missing & (CtxBit(Ctx::kEntrypoint) | CtxBit(Ctx::kUserStack))) {
    FetchStack(pkt);
  }
  if (missing & CtxBit(Ctx::kInterpStack)) {
    FetchInterp(pkt);
  }
  if constexpr (kObsCompiledIn) {
    if (DecisionScratch* ds = g_scratch; ds != nullptr && ds->time_ctx) {
      const uint64_t dt = trace::NowNs() - t0;
      ds->ctx_ns += dt;
      if (ds->trace_ctx) {
        trace::TraceRecord rec;
        rec.ts_ns = trace::NowNs();
        rec.worker = ds->worker;
        rec.op = ds->op;
        rec.event = static_cast<uint8_t>(trace::Event::kCtxFetch);
        rec.subject_sid = pkt.req->task->cred.sid;
        rec.chain_id = static_cast<int32_t>(missing);  // fetched CtxMask
        rec.eval_ns = trace::ClampNs(dt);
        ds->hub->Emit(rec);
      }
    }
  }
}

// --- logging -------------------------------------------------------------------

void Engine::EmitLog(Packet& pkt, const std::string& prefix) {
  EnsureContext(pkt, CtxBit(Ctx::kObject) | CtxBit(Ctx::kAdversaryAccess) |
                         CtxBit(Ctx::kEntrypoint));
  const sim::AccessRequest& req = *pkt.req;
  LogRecord rec;
  rec.tick = kernel_.tick();
  rec.pid = req.task->pid;
  rec.comm = req.task->comm;
  rec.exe = req.task->exe;
  rec.op = req.op;
  rec.syscall = std::string(sim::SyscallName(req.syscall_nr));
  rec.subject_label = kernel_.labels().Name(req.task->cred.sid);
  if (pkt.has_object) {
    rec.object_label = kernel_.labels().Name(pkt.object_sid);
    rec.object = pkt.object_id;
  }
  rec.name = std::string(req.name);
  if (pkt.entrypoint_valid) {
    rec.entry_valid = true;
    rec.program = pkt.entrypoint.image_path;
    rec.entrypoint = pkt.entrypoint.offset;
  }
  rec.adversary_writable = pkt.adversary_writable;
  rec.adversary_readable = pkt.adversary_readable;
  rec.prefix = prefix;
  log_.Append(std::move(rec));
  // Audit hook: a LOG fired during an audited decision becomes a kLogHit
  // record in the epilogue. The compiled kLog handler parked its rule
  // identity in cur_chain/cur_rule just before calling here; the legacy
  // walker's LogTarget::Fire leaves -1 (the tracing convention). The
  // audit-drop EmitLog in Authorize runs after the scratch is popped, so a
  // denial never double-reports as a log hit.
  if constexpr (audit::kAuditCompiledIn) {
    if (AuditScratch* as = g_audit) {
      as->NoteLog();
    }
  }
}

// --- rule evaluation -------------------------------------------------------------

bool Engine::DefaultMatches(const Rule& rule, Packet& pkt) {
  const sim::AccessRequest& req = *pkt.req;
  if (rule.op && *rule.op != req.op) {
    return false;
  }
  if (!rule.subject.wildcard &&
      !rule.subject.MatchesSubject(req.task->cred.sid, kernel_.policy())) {
    return false;
  }
  if (rule.has_program() || rule.entrypoint) {
    EnsureContext(pkt, CtxBit(Ctx::kEntrypoint));
    if (!pkt.entrypoint_valid) {
      return false;  // unusable stack forfeits only this process's protection
    }
    if (rule.has_program() && !(pkt.entrypoint.image == rule.program_file)) {
      return false;
    }
    if (rule.entrypoint && pkt.entrypoint.offset != *rule.entrypoint) {
      return false;
    }
  }
  if (!rule.object.wildcard || rule.ino) {
    EnsureContext(pkt, CtxBit(Ctx::kObject));
    if (!pkt.has_object) {
      return false;
    }
    if (rule.ino && pkt.object_id.ino != *rule.ino) {
      return false;
    }
    if (!rule.object.wildcard) {
      // SYSHIGH membership is a policy (adversary accessibility) question.
      if (rule.object.syshigh) {
        EnsureContext(pkt, CtxBit(Ctx::kAdversaryAccess));
      }
      if (!rule.object.MatchesObject(pkt.object_sid, kernel_.policy())) {
        return false;
      }
    }
  }
  return true;
}

Engine::Verdict Engine::EvalRule(const CompiledRuleset& rs, const Rule& rule, Packet& pkt,
                                 int depth) {
  StatsLocal().rules_evaluated.fetch_add(1, kRelaxed);
  rule.evals.fetch_add(1, kRelaxed);
  const sim::AccessRequest& req = *pkt.req;
  // Contextless prechecks first, then one context round-trip: rule.needs is
  // the install-time union of the default matches, every -m module, and the
  // target, so the EnsureContext calls inside DefaultMatches and the modules
  // all short-circuit on the bitmask.
  if (rule.op && *rule.op != req.op) {
    return Verdict::kFallthrough;
  }
  if (!rule.subject.wildcard &&
      !rule.subject.MatchesSubject(req.task->cred.sid, kernel_.policy())) {
    return Verdict::kFallthrough;
  }
  EnsureContext(pkt, rule.needs);
  if (!DefaultMatches(rule, pkt)) {
    return Verdict::kFallthrough;
  }
  for (const auto& match : rule.matches) {
    if (!match->Matches(pkt, *this)) {
      return Verdict::kFallthrough;
    }
  }
  rule.hits.fetch_add(1, kRelaxed);
  NoteRuleHit(&rule);
  switch (rule.target->Fire(pkt, *this)) {
    case TargetKind::kAccept:
      return Verdict::kAccept;
    case TargetKind::kDrop:
      return Verdict::kDrop;
    case TargetKind::kContinue:
      return Verdict::kFallthrough;
    case TargetKind::kReturn:
      return Verdict::kReturn;  // ends this chain; caller continues
    case TargetKind::kJump: {
      const CompiledChain* next = rs.FindCompiled(rule.target->jump_chain());
      if (next != nullptr && depth < kMaxChainDepth) {
        Verdict v = TraverseChain(rs, *next, pkt, depth + 1);
        if (v == Verdict::kAccept || v == Verdict::kDrop) {
          return v;
        }
      }
      return Verdict::kFallthrough;
    }
  }
  return Verdict::kFallthrough;
}

Engine::Verdict Engine::EvalRules(const CompiledRuleset& rs,
                                  const std::vector<const Rule*>& rules, Packet& pkt,
                                  int depth) {
  for (const Rule* rule : rules) {
    Verdict v = EvalRule(rs, *rule, pkt, depth);
    if (v != Verdict::kFallthrough) {
      return v;  // accept, drop, or RETURN to the calling chain
    }
  }
  return Verdict::kFallthrough;
}

Engine::Verdict Engine::TraverseChain(const CompiledRuleset& rs, const CompiledChain& cc,
                                      Packet& pkt, int depth) {
  if (depth >= kMaxChainDepth) {
    return Verdict::kFallthrough;
  }
  const Chain& chain = *cc.chain;
  const OpBucket& bucket = cc.ops[static_cast<size_t>(pkt.req->op)];
  if (config_.ept_chains && chain.index_built()) {
    // Non-entrypoint rules first (paper §4.3), then the hash-selected
    // entrypoint chain. The per-op bucket already excludes rules whose -o
    // operand cannot match.
    Verdict v = EvalRules(rs, bucket.plain, pkt, depth);
    if (v != Verdict::kFallthrough) {
      return v;
    }
    if (bucket.has_indexed) {
      EnsureContext(pkt, CtxBit(Ctx::kEntrypoint));
      if (pkt.entrypoint_valid) {
        const auto* rules =
            chain.EptRules(EptKey{pkt.entrypoint.image, pkt.entrypoint.offset});
        if (rules != nullptr) {
          StatsLocal().ept_chain_hits.fetch_add(1, kRelaxed);
          return EvalRules(rs, *rules, pkt, depth);
        }
      }
    }
    return Verdict::kFallthrough;
  }
  // Linear traversal of the op's bucket (chain order preserved).
  return EvalRules(rs, bucket.all, pkt, depth);
}

// Runs one builtin chain and applies its default policy on fallthrough.
Engine::Verdict Engine::RunBuiltin(const CompiledRuleset& rs, const CompiledChain& cc,
                                   Packet& pkt) {
  Verdict v = TraverseChain(rs, cc, pkt, 0);
  if (v == Verdict::kReturn) {
    v = Verdict::kFallthrough;
  }
  if (v == Verdict::kFallthrough && cc.chain->policy() == Chain::Policy::kDrop) {
    v = Verdict::kDrop;
  }
  return v;
}

// --- compiled evaluator ----------------------------------------------------------
//
// The program-form twin of EvalRule/EvalRules/TraverseChain/RunBuiltin: an
// instruction interpreter over the arena. Every handler replicates its
// legacy counterpart bit for bit — same counter totals, same EnsureContext
// semantics (each guard op fetches exactly what the tree walker's
// DefaultMatches would), same side effects — which the COMPILED ablation
// rung and the differential fuzz test enforce. Builtin matches and targets
// execute inline from pool operands; kMatchNative/kTargetNative escape into
// the extension module's virtual Matches()/Fire().
//
// The handler bodies live once, in src/core/exec_insn.inc, and are expanded
// into two dispatch strategies:
//
//   * ExecRuleSwitch — a portable switch loop (any C++20 compiler);
//   * ExecRuleThreaded — a computed-goto threaded interpreter (GNU C): each
//     handler fetches the next instruction and jumps *directly* to its
//     handler through a per-function label table, giving every opcode its
//     own indirect branch (its own predictor slot) and no per-iteration
//     loop/bounds re-dispatch.
//
// The bounds-free dispatch (`goto *table[insn.op]` over a 256-entry table,
// raw pool indexing in the handlers) is safe because no program reaches
// this code unverified: Engine::CompileRuleset runs the load-time verifier
// (verify.h) over every compiled program and CommitRuleset refuses to
// publish one whose proof fails — the eBPF contract, transplanted.

Engine::Verdict Engine::ExecRuleSwitch(const CompiledRuleset& rs, const RuleRecord& rec,
                                       uint32_t start, Packet& pkt, int depth) {
  const PfProgram& prog = rs.program;
  const sim::AccessRequest& req = *pkt.req;
  for (uint32_t pc = start; pc < rec.end; pc += kPfInsnWords) {
    const PfInsn insn = prog.Fetch(pc);
    switch (static_cast<PfOp>(insn.op)) {
#define PF_OP(name) case PfOp::name:
#define PF_OP_END break;
#include "src/core/exec_insn.inc"  // NOLINT(bugprone-suspicious-include)
#undef PF_OP
#undef PF_OP_END
    }
  }
  return Verdict::kFallthrough;
}

#if defined(PF_THREADED_DISPATCH) && (defined(__GNUC__) || defined(__clang__))

// GCC's cross-jumping pass would merge the identical PF_NEXT tails back
// into one shared indirect branch, collapsing the per-opcode predictor
// slots threading exists to create; keep the tails distinct.
#if defined(__GNUC__) && !defined(__clang__)
__attribute__((optimize("no-crossjumping")))
#endif
Engine::Verdict Engine::ExecRuleThreaded(const CompiledRuleset& rs, const RuleRecord& rec,
                                         uint32_t start, Packet& pkt, int depth) {
  const PfProgram& prog = rs.program;
  const sim::AccessRequest& req = *pkt.req;
  if (start >= rec.end) {
    return Verdict::kFallthrough;
  }
  // Label table indexed by the raw opcode byte: all 256 values dispatch
  // somewhere, and the values outside the instruction set skip the
  // instruction — exactly the switch loop's no-default behavior. Static:
  // label addresses are constants within the function, so this materializes
  // once at load time.
  static const void* const kDispatch[256] = {
      &&op_invalid,          // 0
      &&op_kRuleBegin,       &&op_kCheckOp,         &&op_kMatchSubject,
      &&op_kEnsureCtx,       &&op_kCheckProgram,    &&op_kCheckEptOff,
      &&op_kCheckIno,        &&op_kMatchObject,     &&op_kMatchState,
      &&op_kMatchSignal,     &&op_kMatchSyscallArg, &&op_kMatchCompare,
      &&op_kMatchInterp,     &&op_kMatchNative,     &&op_kAccept,
      &&op_kDrop,            &&op_kReturn,          &&op_kContinue,
      &&op_kJump,            &&op_kStateSet,        &&op_kStateUnset,
      &&op_kLog,             &&op_kTargetNative,    &&op_kMatchStateEq,
      &&op_kMatchStateNe,    &&op_kMatchSyscallNrEq, &&op_kMatchSyscallNrNe,
      &&op_kMatchSyscallArgEq, &&op_kMatchSyscallArgNe, &&op_kMatchCompareEq,
      &&op_kMatchCompareNe,  &&op_kMatchPhase,  // 32 == kPfOpCount - 1
// 223 out-of-range slots (33..255), all skipping the instruction.
#define PF_INVALID8 \
  &&op_invalid, &&op_invalid, &&op_invalid, &&op_invalid, &&op_invalid, &&op_invalid, \
      &&op_invalid, &&op_invalid
      &&op_invalid, &&op_invalid, &&op_invalid, &&op_invalid, &&op_invalid,
      &&op_invalid, &&op_invalid,
      PF_INVALID8, PF_INVALID8, PF_INVALID8, PF_INVALID8, PF_INVALID8, PF_INVALID8,
      PF_INVALID8, PF_INVALID8, PF_INVALID8, PF_INVALID8, PF_INVALID8, PF_INVALID8,
      PF_INVALID8, PF_INVALID8, PF_INVALID8, PF_INVALID8, PF_INVALID8, PF_INVALID8,
      PF_INVALID8, PF_INVALID8, PF_INVALID8, PF_INVALID8, PF_INVALID8, PF_INVALID8,
      PF_INVALID8,
#undef PF_INVALID8
  };
  static_assert(kPfOpCount == 33, "keep the label table in sync with PfOp");

#define PF_NEXT                          \
  do {                                   \
    pc += kPfInsnWords;                  \
    if (pc >= rec.end) {                 \
      return Verdict::kFallthrough;      \
    }                                    \
    insn = prog.Fetch(pc);               \
    goto* kDispatch[insn.op];            \
  } while (0)

  uint32_t pc = start;
  PfInsn insn = prog.Fetch(pc);
  goto* kDispatch[insn.op];

op_invalid:
  PF_NEXT;

#define PF_OP(name) op_##name:
#define PF_OP_END PF_NEXT;
#include "src/core/exec_insn.inc"  // NOLINT(bugprone-suspicious-include)
#undef PF_OP
#undef PF_OP_END
#undef PF_NEXT
}

#else  // !PF_THREADED_DISPATCH: alias the switch loop so callers need no #if.

Engine::Verdict Engine::ExecRuleThreaded(const CompiledRuleset& rs, const RuleRecord& rec,
                                         uint32_t start, Packet& pkt, int depth) {
  return ExecRuleSwitch(rs, rec, start, pkt, depth);
}

#endif

Engine::Verdict Engine::ExecRule(const CompiledRuleset& rs, const RuleRecord& rec,
                                 uint32_t start, Packet& pkt, int depth) {
  // One predictable branch selects the dispatch strategy; everything the
  // handlers do is shared (exec_insn.inc), so this is an implementation
  // detail, never a semantic fork.
  if (config_.threaded_eval) {
    return ExecRuleThreaded(rs, rec, start, pkt, depth);
  }
  return ExecRuleSwitch(rs, rec, start, pkt, depth);
}

Engine::Verdict Engine::ExecEntries(const CompiledRuleset& rs, uint32_t off, uint32_t len,
                                    bool op_checked, Packet& pkt, int depth) {
  return ExecEntryList(rs, rs.program.entries.data() + off, len, op_checked, pkt, depth);
}

Engine::Verdict Engine::ExecEntryList(const CompiledRuleset& rs, const uint32_t* recs,
                                      uint32_t len, bool op_checked, Packet& pkt,
                                      int depth) {
  const PfProgram& prog = rs.program;
  DecisionScratch* ds = nullptr;
  if constexpr (kObsCompiledIn) {
    ds = g_scratch;
  }
  // rules_evaluated is batched: one thread-local lookup and one atomic add
  // per entry list instead of per rule. Totals match the legacy walker
  // exactly (every return path below flushes); the per-rule `evals` counter
  // stays per rule — `pftables -L -v` prints it.
  EngineStatsBlock& sb = StatsLocal();
  uint32_t evals = 0;
  const auto flush = [&] { sb.rules_evaluated.fetch_add(evals, kRelaxed); };
  for (uint32_t i = 0; i < len; ++i) {
    const RuleRecord& rec = prog.rules[recs[i]];
    ++evals;
    rec.rule->evals.fetch_add(1, kRelaxed);
    // Bucket lists are op-filtered at compile time, so the kCheckOp guard is
    // a tautology there and evaluation enters past it; entrypoint-index
    // lists keep it (they are selected by (image, offset), not by op).
    const uint32_t start = op_checked ? rec.body : rec.entry + kPfInsnWords;
    Verdict v;
    if (ds != nullptr && ds->trace_rules) {
      // Per-rule attribution: inclusive time (a JUMP rule's span covers the
      // jumped-to chain), accumulated into the rule's eval_ns counter, plus
      // one kRule record whenever the rule produced a verdict.
      const uint64_t t0 = trace::NowNs();
      v = ExecRule(rs, rec, start, pkt, depth);
      const uint64_t dt = trace::NowNs() - t0;
      rec.rule->eval_ns.fetch_add(dt, kRelaxed);
      if (v != Verdict::kFallthrough) {
        trace::TraceRecord tr;
        tr.ts_ns = trace::NowNs();
        tr.worker = ds->worker;
        tr.op = ds->op;
        tr.event = static_cast<uint8_t>(trace::Event::kRule);
        tr.subject_sid = pkt.req->task->cred.sid;
        tr.chain_id = rec.chain_id;
        tr.rule_index = static_cast<int32_t>(rec.chain_index);
        tr.eval_ns = trace::ClampNs(dt);
        if (v == Verdict::kDrop) {
          tr.flags |= trace::kFlagDrop;
        }
        ds->hub->Emit(tr);
      }
    } else {
      v = ExecRule(rs, rec, start, pkt, depth);
    }
    if (v != Verdict::kFallthrough) {
      // First accept/drop wins attribution: with JUMPs the innermost rule
      // that actually decided sets it, and the enclosing JUMP rules (whose
      // ExecRule propagates that verdict) find it already claimed.
      if (ds != nullptr && ds->chain_id < 0 &&
          (v == Verdict::kAccept || v == Verdict::kDrop)) {
        ds->chain_id = rec.chain_id;
        ds->rule_index = static_cast<int32_t>(rec.chain_index);
      }
      flush();
      return v;  // accept, drop, or RETURN to the calling chain
    }
  }
  flush();
  return Verdict::kFallthrough;
}

// Tuple-space dispatch (program.h): resolve the contexts the bucket's
// dimension masks key on, probe one hash table per mask, and merge the few
// surviving slices back into chain order for the shared evaluation loop.
// Soundness: a rule sits in a tuple only when a key mismatch guarantees its
// own guards would fail, and tables whose dimensions are unresolvable (no
// valid entrypoint frame, no object) hold only rules whose guards fail for
// that very reason — so skipping them changes no verdict, side effect, or
// per-rule hit counter; eval counters drop exactly for rules a scan would
// have rejected.
Engine::Verdict Engine::ExecChainTuple(const CompiledRuleset& rs,
                                       const ProgramBucket& bucket, Packet& pkt,
                                       int depth) {
  const PfProgram& prog = rs.program;
  if ((bucket.tuple_dims & kTupleDimEpt) != 0) {
    EnsureContext(pkt, CtxBit(Ctx::kEntrypoint));
  }
  if ((bucket.tuple_dims & (kTupleDimObject | kTupleDimIno)) != 0) {
    EnsureContext(pkt, CtxBit(Ctx::kObject));
  }
  TupleKey probe;
  probe.subject = pkt.req->task->cred.sid;
  if (pkt.entrypoint_valid) {
    probe.ept_dev = pkt.entrypoint.image.dev;
    probe.ept_ino = pkt.entrypoint.image.ino;
    probe.ept_off = pkt.entrypoint.offset;
  }
  if (pkt.has_object) {
    probe.object = pkt.object_sid;
    probe.ino = pkt.object_id.ino;
  }
  struct ActiveSlice {
    const uint32_t* cur;
    const uint32_t* end;
  };
  ActiveSlice act[kTupleMaskLimit + 1];
  uint32_t nact = 0;
  uint32_t total = 0;
  const auto push = [&](uint32_t off, uint32_t len) {
    if (len != 0) {
      act[nact].cur = prog.entries.data() + off;
      act[nact].end = act[nact].cur + len;
      ++nact;
      total += len;
    }
  };
  push(bucket.residual_off, bucket.residual_len);
  for (uint32_t t = 0; t < bucket.tuple_cnt; ++t) {
    const TupleTable& table = prog.tuple_tables[bucket.tuple_off + t];
    if ((table.mask & kTupleDimEpt) != 0 && !pkt.entrypoint_valid) {
      continue;
    }
    if ((table.mask & (kTupleDimObject | kTupleDimIno)) != 0 && !pkt.has_object) {
      continue;
    }
    uint32_t idx =
        static_cast<uint32_t>(TupleKeyHash(table.mask, probe)) & (table.slot_count - 1);
    for (;;) {
      const TupleSlot& slot = prog.tuple_slots[table.slot_off + idx];
      if (slot.len == 0) {
        break;  // empty slot: no tuple with this key
      }
      if (TupleKeyEq(table.mask, slot.key, probe)) {
        push(slot.off, slot.len);
        break;
      }
      idx = (idx + 1) & (table.slot_count - 1);
    }
  }
  if (nact == 0) {
    return Verdict::kFallthrough;
  }
  if (nact == 1) {
    // One surviving slice: run it in place, no merge buffer.
    return ExecEntryList(rs, act[0].cur, static_cast<uint32_t>(act[0].end - act[0].cur),
                         /*op_checked=*/true, pkt, depth);
  }
  // K-way merge by ascending record index == chain order (records of one
  // chain are lowered in chain order, and the slices are disjoint).
  uint32_t stack_buf[128];
  std::vector<uint32_t> heap_buf;
  uint32_t* merged = stack_buf;
  if (total > 128) {
    heap_buf.resize(total);
    merged = heap_buf.data();
  }
  uint32_t n = 0;
  while (nact > 0) {
    uint32_t best = 0;
    for (uint32_t i = 1; i < nact; ++i) {
      if (*act[i].cur < *act[best].cur) {
        best = i;
      }
    }
    merged[n++] = *act[best].cur;
    if (++act[best].cur == act[best].end) {
      act[best] = act[--nact];
    }
  }
  return ExecEntryList(rs, merged, n, /*op_checked=*/true, pkt, depth);
}

Engine::Verdict Engine::ExecChain(const CompiledRuleset& rs, const ProgramChain& pc,
                                  Packet& pkt, int depth) {
  if (depth >= kMaxChainDepth) {
    return Verdict::kFallthrough;
  }
  const ProgramBucket& bucket = pc.ops[static_cast<size_t>(pkt.req->op)];
  if (config_.tuple_dispatch && bucket.has_classifier) {
    return ExecChainTuple(rs, bucket, pkt, depth);
  }
  if (config_.ept_chains && pc.index_built) {
    Verdict v = ExecEntries(rs, bucket.plain_off, bucket.plain_len,
                            /*op_checked=*/true, pkt, depth);
    if (v != Verdict::kFallthrough) {
      return v;
    }
    if (bucket.has_indexed && pc.ept) {
      EnsureContext(pkt, CtxBit(Ctx::kEntrypoint));
      if (pkt.entrypoint_valid) {
        auto it = pc.ept->find(EptKey{pkt.entrypoint.image, pkt.entrypoint.offset});
        if (it != pc.ept->end()) {
          StatsLocal().ept_chain_hits.fetch_add(1, kRelaxed);
          return ExecEntries(rs, it->second.first, it->second.second,
                             /*op_checked=*/false, pkt, depth);
        }
      }
    }
    return Verdict::kFallthrough;
  }
  return ExecEntries(rs, bucket.all_off, bucket.all_len, /*op_checked=*/true, pkt,
                     depth);
}

Engine::Verdict Engine::RunBuiltinCompiled(const CompiledRuleset& rs,
                                           const ProgramChain& pc, Packet& pkt) {
  Verdict v = ExecChain(rs, pc, pkt, 0);
  if (v == Verdict::kReturn) {
    v = Verdict::kFallthrough;
  }
  if (v == Verdict::kFallthrough && pc.policy_drop) {
    v = Verdict::kDrop;
  }
  return v;
}

int64_t Engine::Authorize(sim::AccessRequest& req) {
  if (!config_.enabled || req.task == nullptr) {
    return 0;
  }
  EngineStatsBlock& sb = StatsLocal();
  sb.invocations.fetch_add(1, kRelaxed);
  std::shared_ptr<const CompiledRuleset> hold;
  const CompiledRuleset& rs = PinRuleset(&hold);

  // Builtin chains this operation traverses, in order (create -> output ->
  // input, paper template T2). The commit-time op-coverage mask skips chains
  // with no rule that can match this op — when none remain, the default
  // allow costs neither a Packet nor any per-task state.
  const size_t op_index = static_cast<size_t>(req.op);
  const CompiledChain* applicable[3];
  size_t num_applicable = 0;
  auto consider = [&](const CompiledChain* cc) {
    if (cc != nullptr && (((cc->op_mask >> op_index) & 1) != 0 ||
                          cc->chain->policy() == Chain::Policy::kDrop)) {
      applicable[num_applicable++] = cc;
    }
  };
  if (req.op == sim::Op::kSyscallBegin) {
    consider(rs.cc_syscallbegin);
  } else {
    // Creation operations consult the create chain first (template T2),
    // write-type operations additionally the output chain, then everything
    // falls through to input.
    if (IsCreateOp(req.op)) {
      consider(rs.cc_create);
    }
    if (IsOutputOp(req.op)) {
      consider(rs.cc_output);
    }
    consider(rs.cc_input);
  }
  if (num_applicable == 0) {
    return 0;  // fast-path allow: never traced (no Packet, no rule base work)
  }

  // --- decision tracepoint, prologue. Disabled tracing costs one relaxed
  // load of the event mask here; PF_NO_TRACE removes even that.
  DecisionScratch scratch;
  DecisionScratch* prev_scratch = nullptr;
  bool trace_decision = false;
  bool trace_vcache = false;
  bool trace_active = false;
  uint64_t t_start = 0;
  [[maybe_unused]] bool obs_timed = false;
  [[maybe_unused]] trace::Path path = trace::Path::kVcache;
  [[maybe_unused]] uint8_t cache_outcome = trace::kCacheNone;
  if constexpr (trace::kTraceCompiledIn) {
    const uint32_t ev = trace_.events();
    if (ev != 0 && ((trace_.op_filter() >> (static_cast<uint32_t>(req.op) &
                                            (trace::TraceHub::kMaxOps - 1))) &
                    1) != 0) {
      trace_decision = (ev & trace::EventBit(trace::Event::kDecision)) != 0;
      trace_vcache = (ev & trace::EventBit(trace::Event::kVcache)) != 0;
      scratch.trace_rules = (ev & trace::EventBit(trace::Event::kRule)) != 0;
      scratch.trace_ctx = (ev & trace::EventBit(trace::Event::kCtxFetch)) != 0;
      trace_active =
          trace_decision || trace_vcache || scratch.trace_rules || scratch.trace_ctx;
      if (trace_active) {
        scratch.worker =
            static_cast<uint16_t>(WorkerIndex() & (trace::TraceHub::kMaxWorkers - 1));
        scratch.op = static_cast<uint8_t>(req.op);
        scratch.time_ctx = true;
        scratch.hub = &trace_;
        prev_scratch = g_scratch;
        g_scratch = &scratch;
        t_start = trace::NowNs();
        obs_timed = true;
      }
    }
  }

  // --- audit prologue. Attribution (verdict-producing rule, context time)
  // rides on the same DecisionScratch the tracer installs, so an audited but
  // untraced decision installs one too: its trace flags stay false and its
  // hub stays null, so no trace records can be emitted through it. Stage
  // timing is only armed when the hub asks for it (Config::timed) — the
  // default audited decision reads the clock once, at emission.
  AuditScratch audit_scratch;
  [[maybe_unused]] bool audit_active = false;
  if constexpr (audit::kAuditCompiledIn) {
    if (audit_.enabled()) {
      audit_active = true;
      audit_scratch.prev = g_audit;
      g_audit = &audit_scratch;
      if (!trace_active) {
        // No worker/op setup here: an audited-only decision resolves its
        // worker lane at emission time, so the (dominant) allow path pays
        // only the two TLS installs.
        prev_scratch = g_scratch;
        g_scratch = &scratch;
        if (audit_.timed()) {
          scratch.time_ctx = true;
          t_start = trace::NowNs();
          obs_timed = true;
        }
      }
    }
  }

  Packet pkt;
  pkt.req = &req;
  if (!config_.lazy_context) {
    EnsureContext(pkt, kAllCtx);
  }

  // Verdict-cache probe, three tiers:
  //   * pure: every applicable bucket's verdict is a function of the key
  //     alone — probe with the base key (unchanged from before the stateful
  //     tier existed);
  //   * stateful: some bucket is impure but every impure one is
  //     automaton-lowered (astate.causes == 0) — probe with the key extended
  //     by the task's folded automaton state (plus syscall number / signal
  //     disposition when lowered guards read them); a hit replays the
  //     memoized rule hits and dictionary writes, a miss traverses under an
  //     armed effects capture;
  //   * bypass: some impure bucket is not lowerable (LOG, variable STATE
  //     operands, SYSCALL_ARGS beyond the number, ...) — traverse uncached,
  //     attributing the primary cause to the per-cause counters.
  bool cacheable = config_.verdict_cache;
  CtxMask needs = 0;
  for (size_t i = 0; i < num_applicable; ++i) {
    const OpBucket& bucket = applicable[i]->ops[op_index];
    cacheable = cacheable && bucket.cacheable;
    needs |= bucket.needs;
  }
  bool state_probe = false;
  bool nr_in_key = false;
  bool sig_in_key = false;
  uint8_t bypass_causes = 0;
  uint64_t astate_fold = 0;
  std::vector<uint16_t> protocols;
  if (config_.verdict_cache && !cacheable) {
    const bool automata_ok = config_.automata && rs.program.automata_built;
    bool admissible = automata_ok;
    for (size_t i = 0; i < num_applicable; ++i) {
      const CompiledChain* cc = applicable[i];
      if (cc->ops[op_index].cacheable) {
        continue;  // pure bucket: contributes nothing stateful
      }
      if (!automata_ok || cc->program_chain < 0) {
        admissible = false;
        continue;
      }
      const ProgramBucket& pb = rs.program.chains[cc->program_chain].ops[op_index];
      bypass_causes |= pb.astate.causes;
      if (pb.astate.causes != 0) {
        admissible = false;
        continue;
      }
      nr_in_key = nr_in_key || pb.astate.nr_in_key;
      sig_in_key = sig_in_key || pb.astate.sig_in_key;
      protocols.insert(protocols.end(), pb.astate.protocols.begin(),
                       pb.astate.protocols.end());
    }
    state_probe = admissible;
    if (state_probe && !protocols.empty()) {
      std::sort(protocols.begin(), protocols.end());
      protocols.erase(std::unique(protocols.begin(), protocols.end()), protocols.end());
    }
  }
  VerdictKey key;
  size_t key_hash = 0;
  bool insert_on_miss = false;
  bool drop = false;
  bool decided = false;
  [[maybe_unused]] int32_t hit_chain = -1;
  [[maybe_unused]] int32_t hit_rule = -1;
  std::shared_ptr<PfTaskState> tstate;
  if (state_probe) {
    // Fold the task's current automaton state into the key. Tasks with no
    // PfTaskState yet have an empty dictionary: every digit (and the fold)
    // is zero, with no state faulted in.
    tstate = states_.Find(req.task->pid);
    std::optional<uint64_t> fold;
    if (tstate != nullptr) {
      std::lock_guard<std::mutex> lock(tstate->mu);
      const std::vector<uint32_t>& vec =
          DeriveAutomatonState(rs.program, rs.generation, *tstate);
      fold = FoldAutomatonState(rs.program, protocols, &vec);
    } else {
      fold = FoldAutomatonState(rs.program, protocols, nullptr);
    }
    if (fold) {
      astate_fold = *fold;
    } else {
      state_probe = false;  // fold overflow: serve as a plain bypass
    }
  }
  if (cacheable || state_probe) {
    key.generation = rs.generation;
    key.mac_epoch = kernel_.policy().epoch();
    key.op = static_cast<uint32_t>(req.op);
    key.subject_sid = req.task->cred.sid;
    if (req.inode != nullptr) {
      key.flags |= VerdictKey::kHasObject;
      key.object = req.id;
      key.object_generation = req.inode->generation;
      key.object_sid = req.inode->sid;
    }
    if ((needs & (CtxBit(Ctx::kEntrypoint) | CtxBit(Ctx::kUserStack))) != 0) {
      // Some applicable rule reads the entrypoint, so it is a verdict input;
      // fetch it (cached across hooks of this syscall) and key on it.
      key.flags |= VerdictKey::kEptInKey;
      EnsureContext(pkt, CtxBit(Ctx::kEntrypoint));
      if (pkt.entrypoint_valid) {
        key.flags |= VerdictKey::kEptValid;
        key.ept_image = pkt.entrypoint.image;
        key.ept_offset = pkt.entrypoint.offset;
      }
    }
    if (state_probe) {
      key.flags |= VerdictKey::kStateInKey;
      key.astate = astate_fold;
      if (nr_in_key) {
        key.flags |= VerdictKey::kNrInKey;
        key.syscall_nr = static_cast<uint32_t>(req.syscall_nr);
      }
      if (sig_in_key) {
        // SIGNAL_MATCH reads exactly one predicate of the request: the
        // delivered signal has a handler installed and is blockable. Key on
        // that bit (probed here, so a handler change re-keys, never stales).
        key.flags |= VerdictKey::kSigInKey;
        if (req.op == sim::Op::kSignalDeliver && req.task->signals.HasHandler(req.sig) &&
            !sim::IsUnblockable(req.sig)) {
          key.flags |= VerdictKey::kSigHandled;
        }
      }
    }
    key_hash = VerdictKeyHash()(key);
    if (std::optional<CachedVerdict> cached = vcache_.Lookup(key, key_hash)) {
      sb.vcache_hits.fetch_add(1, kRelaxed);
      cache_outcome = trace::kCacheHit;
      drop = cached->drop;
      decided = true;
      // Cached-hit denials keep exact rule attribution for the audit
      // pipeline: the verdict-producing rule is a pure function of the key,
      // memoized at insert time.
      hit_chain = cached->chain_id;
      hit_rule = cached->rule_index;
      if (state_probe) {
        sb.vcache_state_hits.fetch_add(1, kRelaxed);
        if (cached->fx != nullptr) {
          // Replay the traversal's effects: per-rule hit counters in
          // traversal order, then the dictionary writes (which advance the
          // automaton — the next probe derives the successor state).
          for (const Rule* r : cached->fx->hits) {
            r->hits.fetch_add(1, kRelaxed);
          }
          if (!cached->fx->deltas.empty()) {
            PfTaskState& st = TaskState(*req.task);
            std::lock_guard<std::mutex> lock(st.mu);
            for (const DictDelta& d : cached->fx->deltas) {
              if (d.unset) {
                st.dict.erase(d.key);
              } else {
                // Audit emit point (stateful replay): a memoized @phase write
                // is the same protocol transition the traversal performed.
                if constexpr (audit::kAuditCompiledIn) {
                  if (g_audit != nullptr && d.key == kPhaseKeyName) {
                    auto it = st.dict.find(d.key);
                    NotePhaseTransition(it != st.dict.end()
                                            ? it->second
                                            : PhaseId(kPhaseInitName),
                                        d.value);
                  }
                }
                st.dict[d.key] = d.value;
              }
              ++st.dict_seq;
            }
          }
        }
      }
    } else {
      sb.vcache_misses.fetch_add(1, kRelaxed);
      cache_outcome = trace::kCacheMiss;
      insert_on_miss = true;
      if (state_probe) {
        sb.vcache_state_misses.fetch_add(1, kRelaxed);
      }
    }
  } else if (config_.verdict_cache) {
    sb.vcache_bypasses.fetch_add(1, kRelaxed);
    if (bypass_causes != 0) {
      const unsigned cause = static_cast<unsigned>(std::countr_zero(bypass_causes));
      if (cause < kBypassCauseCount) {
        sb.vcache_bypass_causes[cause].fetch_add(1, kRelaxed);
      }
    }
    cache_outcome = trace::kCacheBypass;
  }
  if constexpr (trace::kTraceCompiledIn) {
    if (trace_vcache && cache_outcome != trace::kCacheNone) {
      trace::TraceRecord rec;
      rec.ts_ns = trace::NowNs();
      rec.worker = scratch.worker;
      rec.op = scratch.op;
      rec.event = static_cast<uint8_t>(trace::Event::kVcache);
      rec.subject_sid = req.task->cred.sid;
      rec.cache = cache_outcome;
      if (state_probe) {
        // Stateful-tier attribution: kVcache records carry no timing, so
        // the folded automaton state rides in total_ns (kFlagStateKey marks
        // it meaningful) — pftrace renders it as the probe's state id.
        rec.flags |= trace::kFlagStateKey;
        rec.total_ns = trace::ClampNs(astate_fold);
      }
      trace_.Emit(rec);
    }
  }

  if (!decided) {
    // A stateful miss traverses under an armed effects capture; the entry is
    // inserted only when the task's dict_seq moved by exactly this
    // traversal's own writes — a concurrent writer interleaving with the
    // traversal would make the capture describe a mixed history.
    EffectsCapture capture;
    EffectsCapture* prev_capture = nullptr;
    uint64_t seq_before = 0;
    const bool capturing = state_probe && insert_on_miss;
    if (capturing) {
      if (tstate != nullptr) {
        std::lock_guard<std::mutex> lock(tstate->mu);
        seq_before = tstate->dict_seq;
      }
      prev_capture = g_capture;
      g_capture = &capture;
    }
    Verdict verdict = Verdict::kFallthrough;
    for (size_t i = 0; i < num_applicable && verdict == Verdict::kFallthrough; ++i) {
      const CompiledChain* cc = applicable[i];
      if (config_.compiled_eval && cc->program_chain >= 0) {
        path = trace::Path::kCompiled;
        verdict = RunBuiltinCompiled(rs, rs.program.chains[cc->program_chain], pkt);
      } else {
        path = trace::Path::kFull;
        verdict = RunBuiltin(rs, *cc, pkt);
      }
    }
    drop = verdict == Verdict::kDrop;
    if (capturing) {
      g_capture = prev_capture;
    }
    if (insert_on_miss) {
      CachedVerdict cv;
      cv.drop = drop;
      // Memoize attribution when an observer was watching the traversal
      // (compiled path only, -1 otherwise — the tracing convention). Like
      // the verdict it is a pure function of the key, so a later hit can
      // report the matched rule without re-traversing.
      cv.chain_id = scratch.chain_id;
      cv.rule_index = scratch.rule_index;
      bool insert = true;
      if (state_probe) {
        if (tstate == nullptr) {
          // The traversal (or a concurrent one) may have faulted state in;
          // the empty pre-traversal dictionary corresponds to seq 0.
          tstate = states_.Find(req.task->pid);
          seq_before = 0;
        }
        if (tstate != nullptr) {
          std::lock_guard<std::mutex> lock(tstate->mu);
          insert = tstate->dict_seq == seq_before + capture.own_mutations;
        }
        if (insert && (!capture.fx.hits.empty() || !capture.fx.deltas.empty())) {
          cv.fx = std::make_shared<const StatefulEffects>(std::move(capture.fx));
        }
      }
      if (insert) {
        vcache_.Insert(key, key_hash, std::move(cv));
      }
    }
  }

  // --- observer epilogue: pop the shared scratch (installed by whichever of
  // the two prologues armed it) and close the decision's timing window.
  [[maybe_unused]] uint64_t total = 0;
  if constexpr (kObsCompiledIn) {
    if (trace_active || audit_active) {
      g_scratch = prev_scratch;
      if (obs_timed) {
        total = trace::NowNs() - t_start;
      }
    }
  }

  // --- decision tracepoint, epilogue: histogram sample + one kDecision
  // record covering context fetch, probe, and traversal of this request.
  if constexpr (trace::kTraceCompiledIn) {
    if (trace_active) {
      if (trace_decision) {
        trace_.RecordLatency(static_cast<uint32_t>(req.op), path, total);
        trace::TraceRecord rec;
        rec.ts_ns = trace::NowNs();
        rec.worker = scratch.worker;
        rec.op = scratch.op;
        rec.event = static_cast<uint8_t>(trace::Event::kDecision);
        rec.path = static_cast<uint8_t>(path);
        rec.cache = cache_outcome;
        rec.subject_sid = req.task->cred.sid;
        rec.object_sid = pkt.has_object ? pkt.object_sid : sim::kInvalidSid;
        rec.chain_id = scratch.chain_id;
        rec.rule_index = scratch.rule_index;
        rec.ctx_ns = trace::ClampNs(scratch.ctx_ns);
        rec.total_ns = trace::ClampNs(total);
        rec.eval_ns =
            trace::ClampNs(total >= scratch.ctx_ns ? total - scratch.ctx_ns : 0);
        if (drop) {
          rec.flags |= trace::kFlagDrop;
          if (config_.audit_only) {
            rec.flags |= trace::kFlagAudited;
          }
        }
        if (pkt.entrypoint_valid) {
          rec.flags |= trace::kFlagEptValid;
          rec.ept_dev = pkt.entrypoint.image.dev;
          rec.ept_ino = pkt.entrypoint.image.ino;
          rec.ept_offset = pkt.entrypoint.offset;
        }
        if (state_probe) {
          rec.flags |= trace::kFlagStateKey;  // decision keyed on automaton state
        }
        trace_.Emit(rec);
      }
    }
  }

  // --- audit epilogue: materialize this decision's security events with
  // full provenance. Runs after the scratch pop on purpose — the audit-mode
  // EmitLog in the verdict tail below must not double-report as a kLogHit.
  if constexpr (audit::kAuditCompiledIn) {
    if (audit_active) {
      g_audit = audit_scratch.prev;
      // Stack-local event check before anything shared: an allow that saw no
      // mid-traversal events — the hot path — pays no atomic load here (a
      // kind mask of 0 zeroes every event count below).
      const bool any_event = drop || audit_scratch.phase_count != 0 ||
                             audit_scratch.log_count != 0;
      const uint32_t kinds = any_event ? audit_.kinds() : 0;
      const bool deny_event =
          drop && (kinds & audit::KindBit(config_.audit_only
                                              ? audit::Kind::kAuditedDeny
                                              : audit::Kind::kDeny)) != 0;
      const uint32_t n_phase =
          (kinds & audit::KindBit(audit::Kind::kPhase)) != 0
              ? std::min(audit_scratch.phase_count, AuditScratch::kMaxPending)
              : 0;
      const uint32_t n_log =
          (kinds & audit::KindBit(audit::Kind::kLogHit)) != 0
              ? std::min(audit_scratch.log_count, AuditScratch::kMaxPending)
              : 0;
      if (deny_event || n_phase != 0 || n_log != 0) {
        const size_t w =
            trace_active ? scratch.worker
                         : (WorkerIndex() & (trace::TraceHub::kMaxWorkers - 1));
        audit::AuditRecord base;
        base.ts_ns = trace::NowNs();
        base.generation = rs.generation;
        base.subject_sid = req.task->cred.sid;
        base.pid = static_cast<uint32_t>(req.task->pid);
        base.worker = static_cast<uint16_t>(w);
        base.op = static_cast<uint8_t>(req.op);
        if (req.inode != nullptr) {
          base.flags |= audit::kFlagHasObject;
          base.object_sid = req.inode->sid;
          base.object_dev = req.id.dev;
          base.object_ino = req.id.ino;
          base.object_gen = req.inode->generation;
        }
        if (pkt.entrypoint_valid) {
          base.flags |= audit::kFlagEptValid;
          base.ept_dev = pkt.entrypoint.image.dev;
          base.ept_ino = pkt.entrypoint.image.ino;
          base.ept_offset = pkt.entrypoint.offset;
        }
        if (obs_timed) {
          base.flags |= audit::kFlagTimed;
          base.total_ns = total;
          base.ctx_ns = scratch.ctx_ns;
        }
        // Serving-tier attribution: which layer of the engine produced (or
        // replayed) the verdict this event belongs to.
        if (decided) {
          base.tier = static_cast<uint8_t>(state_probe ? audit::Tier::kVcacheState
                                                       : audit::Tier::kVcache);
        } else if (cache_outcome == trace::kCacheBypass) {
          base.tier = static_cast<uint8_t>(audit::Tier::kBypass);
          base.cause = bypass_causes;
        } else {
          base.tier = static_cast<uint8_t>(path == trace::Path::kCompiled
                                               ? audit::Tier::kCompiled
                                               : audit::Tier::kLegacy);
        }
        if (state_probe) {
          base.flags |= audit::kFlagStateKey;
          base.automaton = protocols.empty()
                               ? audit::kNoAutomaton
                               : static_cast<uint16_t>(protocols.front());
          base.astate_in = astate_fold;
          base.astate_out = astate_fold;
          // Successor state: re-fold after this decision's recorded effects
          // (traversal writes or replayed deltas) have been applied.
          std::shared_ptr<PfTaskState> ts =
              tstate != nullptr ? tstate : states_.Find(req.task->pid);
          std::optional<uint64_t> out_fold;
          if (ts != nullptr) {
            std::lock_guard<std::mutex> lock(ts->mu);
            const std::vector<uint32_t>& vec =
                DeriveAutomatonState(rs.program, rs.generation, *ts);
            out_fold = FoldAutomatonState(rs.program, protocols, &vec);
          } else {
            out_fold = FoldAutomatonState(rs.program, protocols, nullptr);
          }
          if (out_fold) {
            base.astate_out = *out_fold;
          }
        }
        // Mid-traversal events first, in occurrence order, then the verdict.
        for (uint32_t i = 0; i < n_phase; ++i) {
          audit::AuditRecord rec = base;
          rec.kind = static_cast<uint8_t>(audit::Kind::kPhase);
          rec.flags = static_cast<uint16_t>(rec.flags & ~audit::kFlagStateKey);
          rec.automaton = audit::kNoAutomaton;
          rec.astate_in = static_cast<uint64_t>(audit_scratch.phase_from[i]);
          rec.astate_out = static_cast<uint64_t>(audit_scratch.phase_to[i]);
          audit_.Emit(w, rec);
        }
        for (uint32_t i = 0; i < n_log; ++i) {
          audit::AuditRecord rec = base;
          rec.kind = static_cast<uint8_t>(audit::Kind::kLogHit);
          rec.chain_id = audit_scratch.log_chain[i];
          rec.rule_index = audit_scratch.log_rule[i];
          audit_.Emit(w, rec);
        }
        if (deny_event) {
          audit::AuditRecord rec = base;
          rec.kind = static_cast<uint8_t>(config_.audit_only
                                              ? audit::Kind::kAuditedDeny
                                              : audit::Kind::kDeny);
          rec.chain_id = decided ? hit_chain : scratch.chain_id;
          rec.rule_index = decided ? hit_rule : scratch.rule_index;
          audit_.Emit(w, rec);
        }
      }
    }
  }

  if (drop) {
    if (config_.audit_only) {
      // Permissive deployment: log what enforcement would have denied.
      sb.audited_drops.fetch_add(1, kRelaxed);
      EmitLog(pkt, "audit-drop");
      return 0;
    }
    sb.drops.fetch_add(1, kRelaxed);
    return sim::SysError(sim::Err::kAcces);
  }
  return 0;  // default allow
}

}  // namespace pf::core
