#include "src/core/engine.h"

#include "src/sim/task.h"

namespace pf::core {

namespace {
constexpr int kMaxChainDepth = 8;
constexpr CtxMask kAllCtx = CtxBit(Ctx::kObject) | CtxBit(Ctx::kLinkTarget) |
                            CtxBit(Ctx::kAdversaryAccess) | CtxBit(Ctx::kEntrypoint) |
                            CtxBit(Ctx::kUserStack) | CtxBit(Ctx::kInterpStack);
}  // namespace

Engine::Engine(sim::Kernel& kernel, EngineConfig config)
    : kernel_(kernel), config_(config) {
  chain_input_ = ruleset_.filter().Find("input");
  chain_output_ = ruleset_.filter().Find("output");
  chain_create_ = ruleset_.filter().Find("create");
  chain_syscallbegin_ = ruleset_.filter().Find("syscallbegin");
}

namespace {
// Operations by which the process *affects* resources (mediated by the
// output chain in addition to input); reads/deliveries are input-only.
bool IsOutputOp(sim::Op op) {
  switch (op) {
    case sim::Op::kFileWrite:
    case sim::Op::kFileSetattr:
    case sim::Op::kFileCreate:
    case sim::Op::kFileUnlink:
    case sim::Op::kDirAddName:
    case sim::Op::kDirRemoveName:
    case sim::Op::kSocketBind:
    case sim::Op::kSocketSetattr:
      return true;
    default:
      return false;
  }
}
}  // namespace

Engine* InstallProcessFirewall(sim::Kernel& kernel, EngineConfig config) {
  auto engine = std::make_unique<Engine>(kernel, config);
  Engine* raw = engine.get();
  size_t slot = kernel.AddModule(std::move(engine));
  raw->set_slot(slot);
  return raw;
}

PfTaskState& Engine::TaskState(sim::Task& task) {
  auto& blob = task.security[slot_];
  if (!blob) {
    blob = std::make_shared<PfTaskState>();
  }
  // No shared_ptr copy on the fast path (no refcount traffic).
  return *static_cast<PfTaskState*>(blob.get());
}

void Engine::OnTaskExit(sim::Task& task) { task.security[slot_].reset(); }

void Engine::OnTaskFork(sim::Task& parent, sim::Task& child) {
  // The STATE dictionary follows the process across fork (context caches do
  // not: the child's first access re-unwinds its own stack).
  auto& blob = parent.security[slot_];
  if (!blob) {
    return;
  }
  auto state = std::make_shared<PfTaskState>();
  state->dict = std::static_pointer_cast<PfTaskState>(blob)->dict;
  child.security[slot_] = std::move(state);
}

// --- context modules ---------------------------------------------------------

void Engine::FetchObject(Packet& pkt) {
  ++stats_.ctx_fetches[static_cast<size_t>(Ctx::kObject)];
  sim::AccessRequest& req = *pkt.req;
  if (req.inode != nullptr) {
    pkt.has_object = true;
    pkt.object_sid = req.inode->sid;
    pkt.object_id = req.id;
    pkt.object_generation = req.inode->generation;
    pkt.object_owner = req.inode->uid;
  }
  pkt.Mark(Ctx::kObject);
}

void Engine::FetchLinkTarget(Packet& pkt) {
  ++stats_.ctx_fetches[static_cast<size_t>(Ctx::kLinkTarget)];
  sim::AccessRequest& req = *pkt.req;
  if (req.op == sim::Op::kLnkFileRead && req.inode != nullptr) {
    pkt.link_owner = req.inode->uid;
    if (req.link_target != nullptr) {
      pkt.has_link_target = true;
      pkt.link_target_owner = req.link_target->uid;
      pkt.link_target_sid = req.link_target->sid;
      pkt.link_target_id = req.link_target->id();
    }
  }
  pkt.Mark(Ctx::kLinkTarget);
}

void Engine::FetchAdversaryAccess(Packet& pkt) {
  if (!pkt.Has(Ctx::kObject)) {
    FetchObject(pkt);
  }
  ++stats_.ctx_fetches[static_cast<size_t>(Ctx::kAdversaryAccess)];
  if (pkt.has_object) {
    const sim::MacPolicy& pol = kernel_.policy();
    pkt.adversary_writable = pol.AdversaryWritable(pkt.object_sid);
    pkt.adversary_readable = pol.AdversaryReadable(pkt.object_sid);
  }
  pkt.Mark(Ctx::kAdversaryAccess);
}

void Engine::FetchStack(Packet& pkt) {
  ++stats_.ctx_fetches[static_cast<size_t>(Ctx::kEntrypoint)];
  sim::Task& task = *pkt.req->task;
  PfTaskState& state = TaskState(task);
  const bool cache_ok = config_.cache_context && state.stack_cached &&
                        state.stack_serial == task.syscall_count;
  if (cache_ok) {
    ++stats_.unwind_cache_hits;
  } else {
    ++stats_.unwinds;
    UnwindResult res = UnwindUserStack(task);
    state.stack = std::move(res.frames);
    state.stack_status = res.status;
    state.stack_cached = true;
    state.stack_serial = task.syscall_count;
  }
  pkt.stack = &state.stack;
  pkt.stack_status = state.stack_status;
  if (state.stack_status != UnwindStatus::kAborted && !state.stack.empty()) {
    pkt.entrypoint_valid = true;
    pkt.entrypoint = state.stack.front();
  }
  pkt.Mark(Ctx::kEntrypoint);
  pkt.Mark(Ctx::kUserStack);
}

void Engine::FetchInterp(Packet& pkt) {
  ++stats_.ctx_fetches[static_cast<size_t>(Ctx::kInterpStack)];
  sim::Task& task = *pkt.req->task;
  PfTaskState& state = TaskState(task);
  const bool cache_ok = config_.cache_context && state.interp_cached &&
                        state.interp_serial == task.syscall_count;
  if (!cache_ok) {
    InterpUnwindResult res = UnwindInterpStack(task);
    state.interp = std::move(res.frames);
    state.interp_status = res.status;
    state.interp_cached = true;
    state.interp_serial = task.syscall_count;
  }
  pkt.interp = &state.interp;
  pkt.interp_status = state.interp_status;
  pkt.Mark(Ctx::kInterpStack);
}

void Engine::EnsureContext(Packet& pkt, CtxMask mask) {
  CtxMask missing = mask & ~pkt.have;
  if (missing == 0) {
    return;
  }
  if (missing & CtxBit(Ctx::kObject)) {
    FetchObject(pkt);
  }
  if (missing & CtxBit(Ctx::kLinkTarget)) {
    FetchLinkTarget(pkt);
  }
  if (missing & CtxBit(Ctx::kAdversaryAccess)) {
    FetchAdversaryAccess(pkt);
  }
  if (missing & (CtxBit(Ctx::kEntrypoint) | CtxBit(Ctx::kUserStack))) {
    FetchStack(pkt);
  }
  if (missing & CtxBit(Ctx::kInterpStack)) {
    FetchInterp(pkt);
  }
}

// --- logging -------------------------------------------------------------------

void Engine::EmitLog(Packet& pkt, const std::string& prefix) {
  EnsureContext(pkt, CtxBit(Ctx::kObject) | CtxBit(Ctx::kAdversaryAccess) |
                         CtxBit(Ctx::kEntrypoint));
  const sim::AccessRequest& req = *pkt.req;
  LogRecord rec;
  rec.tick = kernel_.tick();
  rec.pid = req.task->pid;
  rec.comm = req.task->comm;
  rec.exe = req.task->exe;
  rec.op = req.op;
  rec.syscall = std::string(sim::SyscallName(req.syscall_nr));
  rec.subject_label = kernel_.labels().Name(req.task->cred.sid);
  if (pkt.has_object) {
    rec.object_label = kernel_.labels().Name(pkt.object_sid);
    rec.object = pkt.object_id;
  }
  rec.name = std::string(req.name);
  if (pkt.entrypoint_valid) {
    rec.entry_valid = true;
    rec.program = pkt.entrypoint.image_path;
    rec.entrypoint = pkt.entrypoint.offset;
  }
  rec.adversary_writable = pkt.adversary_writable;
  rec.adversary_readable = pkt.adversary_readable;
  rec.prefix = prefix;
  log_.Append(std::move(rec));
}

// --- rule evaluation -------------------------------------------------------------

bool Engine::DefaultMatches(const Rule& rule, Packet& pkt) {
  const sim::AccessRequest& req = *pkt.req;
  if (rule.op && *rule.op != req.op) {
    return false;
  }
  if (!rule.subject.wildcard &&
      !rule.subject.MatchesSubject(req.task->cred.sid, kernel_.policy())) {
    return false;
  }
  if (rule.has_program() || rule.entrypoint) {
    EnsureContext(pkt, CtxBit(Ctx::kEntrypoint));
    if (!pkt.entrypoint_valid) {
      return false;  // unusable stack forfeits only this process's protection
    }
    if (rule.has_program() && !(pkt.entrypoint.image == rule.program_file)) {
      return false;
    }
    if (rule.entrypoint && pkt.entrypoint.offset != *rule.entrypoint) {
      return false;
    }
  }
  if (!rule.object.wildcard || rule.ino) {
    EnsureContext(pkt, CtxBit(Ctx::kObject));
    if (!pkt.has_object) {
      return false;
    }
    if (rule.ino && pkt.object_id.ino != *rule.ino) {
      return false;
    }
    if (!rule.object.wildcard) {
      // SYSHIGH membership is a policy (adversary accessibility) question.
      if (rule.object.syshigh) {
        EnsureContext(pkt, CtxBit(Ctx::kAdversaryAccess));
      }
      if (!rule.object.MatchesObject(pkt.object_sid, kernel_.policy())) {
        return false;
      }
    }
  }
  return true;
}

Engine::Verdict Engine::EvalRule(const Rule& rule, Packet& pkt, int depth) {
  ++stats_.rules_evaluated;
  ++rule.evals;
  if (!DefaultMatches(rule, pkt)) {
    return Verdict::kFallthrough;
  }
  for (const auto& match : rule.matches) {
    EnsureContext(pkt, match->Needs());
    if (!match->Matches(pkt, *this)) {
      return Verdict::kFallthrough;
    }
  }
  ++rule.hits;
  EnsureContext(pkt, rule.target->Needs());
  switch (rule.target->Fire(pkt, *this)) {
    case TargetKind::kAccept:
      return Verdict::kAccept;
    case TargetKind::kDrop:
      return Verdict::kDrop;
    case TargetKind::kContinue:
      return Verdict::kFallthrough;
    case TargetKind::kReturn:
      return Verdict::kReturn;  // ends this chain; caller continues
    case TargetKind::kJump: {
      const Chain* next = ruleset_.filter().Find(rule.target->jump_chain());
      if (next != nullptr && depth < kMaxChainDepth) {
        Verdict v = TraverseChain(*next, pkt, depth + 1);
        if (v == Verdict::kAccept || v == Verdict::kDrop) {
          return v;
        }
      }
      return Verdict::kFallthrough;
    }
  }
  return Verdict::kFallthrough;
}

Engine::Verdict Engine::EvalRules(const std::vector<const Rule*>& rules, Packet& pkt,
                                  int depth) {
  for (const Rule* rule : rules) {
    Verdict v = EvalRule(*rule, pkt, depth);
    if (v != Verdict::kFallthrough) {
      return v;  // accept, drop, or RETURN to the calling chain
    }
  }
  return Verdict::kFallthrough;
}

Engine::Verdict Engine::EvalRulesLinear(const std::vector<Rule>& rules, Packet& pkt,
                                        int depth) {
  for (const Rule& rule : rules) {
    Verdict v = EvalRule(rule, pkt, depth);
    if (v != Verdict::kFallthrough) {
      return v;
    }
  }
  return Verdict::kFallthrough;
}

Engine::Verdict Engine::TraverseChain(const Chain& chain, Packet& pkt, int depth) {
  if (depth >= kMaxChainDepth) {
    return Verdict::kFallthrough;
  }
  if (config_.ept_chains && chain.index_built()) {
    // Non-entrypoint rules first (paper §4.3), then the hash-selected
    // entrypoint chain.
    Verdict v = EvalRules(chain.plain_rules(), pkt, depth);
    if (v != Verdict::kFallthrough) {
      return v;
    }
    if (chain.indexed_entrypoints() > 0) {
      EnsureContext(pkt, CtxBit(Ctx::kEntrypoint));
      if (pkt.entrypoint_valid) {
        const auto* rules =
            chain.EptRules(EptKey{pkt.entrypoint.image, pkt.entrypoint.offset});
        if (rules != nullptr) {
          ++stats_.ept_chain_hits;
          return EvalRules(*rules, pkt, depth);
        }
      }
    }
    return Verdict::kFallthrough;
  }
  // Linear traversal.
  return EvalRulesLinear(chain.rules(), pkt, depth);
}

int64_t Engine::Authorize(sim::AccessRequest& req) {
  if (!config_.enabled || req.task == nullptr) {
    return 0;
  }
  ++stats_.invocations;
  Packet pkt;
  pkt.req = &req;
  if (!config_.lazy_context) {
    EnsureContext(pkt, kAllCtx);
  }
  PfTaskState& state = TaskState(*req.task);
  ++state.traversal_depth;
  Verdict verdict = Verdict::kFallthrough;

  // Runs one builtin chain and applies its default policy on fallthrough.
  auto run_builtin = [&](const Chain& chain) -> Verdict {
    Verdict v = TraverseChain(chain, pkt, 0);
    if (v == Verdict::kReturn) {
      v = Verdict::kFallthrough;
    }
    if (v == Verdict::kFallthrough && chain.policy() == Chain::Policy::kDrop) {
      v = Verdict::kDrop;
    }
    return v;
  };

  if (req.op == sim::Op::kSyscallBegin) {
    if (chain_syscallbegin_->size() > 0 ||
        chain_syscallbegin_->policy() == Chain::Policy::kDrop) {
      verdict = run_builtin(*chain_syscallbegin_);
    }
  } else {
    // Creation operations consult the create chain first (template T2).
    if (req.op == sim::Op::kFileCreate || req.op == sim::Op::kDirAddName ||
        req.op == sim::Op::kSocketBind) {
      if (chain_create_->size() > 0 ||
          chain_create_->policy() == Chain::Policy::kDrop) {
        verdict = run_builtin(*chain_create_);
      }
    }
    // Write-type operations additionally traverse the output chain.
    if (verdict == Verdict::kFallthrough && IsOutputOp(req.op) &&
        (chain_output_->size() > 0 ||
         chain_output_->policy() == Chain::Policy::kDrop)) {
      verdict = run_builtin(*chain_output_);
    }
    if (verdict == Verdict::kFallthrough &&
        (chain_input_->size() > 0 || chain_input_->policy() == Chain::Policy::kDrop)) {
      verdict = run_builtin(*chain_input_);
    }
  }
  --state.traversal_depth;
  if (verdict == Verdict::kDrop) {
    if (config_.audit_only) {
      // Permissive deployment: log what enforcement would have denied.
      ++stats_.audited_drops;
      EmitLog(pkt, "audit-drop");
      return 0;
    }
    ++stats_.drops;
    return sim::SysError(sim::Err::kAcces);
  }
  return 0;  // default allow
}

}  // namespace pf::core
