// The Process Firewall engine.
//
// Registered as a SecurityModule behind the kernel's authorization hooks, it
// builds a Packet for each mediated operation, fetches process/resource
// context through context modules (lazily, with per-syscall caching), and
// traverses the rule base — using entrypoint-specific chains where enabled.
// The three optimizations are independently toggleable to reproduce the
// ablation columns of paper Table 6:
//
//   FULL     = {lazy_context=false, cache_context=false, ept_chains=false}
//   CONCACHE = {lazy_context=false, cache_context=true,  ept_chains=false}
//   LAZYCON  = {lazy_context=true,  cache_context=true,  ept_chains=false}
//   EPTSPC   = {lazy_context=true,  cache_context=true,  ept_chains=true}
//   COMPILED = EPTSPC + compiled_eval (arena-packed program evaluator; see
//              DESIGN.md "Compiled PF programs")
//   VCACHE   = COMPILED + verdict_cache (commit-time compilation + AVC-style
//              verdict cache; see DESIGN.md "Verdict cache and commit-time
//              compilation")
//
// Concurrency model (paper §5.1 makes the hooks re-entrant "without
// disabling interrupts"; here the same property is carried to real worker
// threads — see DESIGN.md "Concurrency model"):
//
//   * Per-task state (the STATE dictionary, context caches) lives in a
//     lock-striped shard table keyed by task id. Each PfTaskState carries a
//     small mutex guarding its dictionary and cache slots; context caches
//     are immutable snapshots published by shared_ptr, so a reader never
//     observes a torn unwind.
//   * Statistics are per-worker ("per-CPU") cache-line-aligned counter
//     blocks bumped with relaxed atomics and aggregated on read — there is
//     no shared hot counter.
//   * The compiled rule base is published RCU-style: each pftables commit
//     copies the staging RuleSet into an immutable CompiledRuleset snapshot
//     and bumps a generation counter. Hook-side readers pin the snapshot
//     through a per-worker epoch cache (one relaxed/acquire load on the fast
//     path; the commit mutex is taken only when the generation moved), so
//     rule reloads never block evaluation.
#ifndef SRC_CORE_ENGINE_H_
#define SRC_CORE_ENGINE_H_

#include <array>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "src/analysis/diagnostics.h"  // standalone by design, like pftables.h
#include "src/audit/hub.h"
#include "src/core/log.h"
#include "src/core/packet.h"
#include "src/core/program.h"
#include "src/core/ruleset.h"
#include "src/core/status.h"
#include "src/sim/kernel.h"
#include "src/trace/hub.h"

namespace pf::core {

// Maximum JUMP nesting depth. A chain entered at this depth is not
// evaluated (TraverseChain falls through), so rules only reachable beyond
// the bound are dead — the static analyzer (src/analysis) flags them.
inline constexpr int kMaxChainDepth = 8;

// Operations by which the process *affects* resources (mediated by the
// output chain in addition to input); reads/deliveries are input-only.
bool IsOutputOp(sim::Op op);

// Creation operations, which consult the `create` chain first (paper
// template T2) before output/input.
bool IsCreateOp(sim::Op op);

struct EngineConfig {
  bool enabled = true;
  bool lazy_context = true;   // fetch context only when a rule needs it
  bool cache_context = true;  // reuse unwinds across hooks within a syscall
  bool ept_chains = true;     // entrypoint-specific chain index
  // AVC-style verdict cache: requests whose applicable chains are pure
  // (commit-time classification) are served from a sharded hash of final
  // verdicts instead of re-traversing the rule base. Chains with stateful or
  // side-effecting rules (STATE, LOG, SYSCALL_ARGS, ...) bypass the cache.
  bool verdict_cache = true;
  // STATE-protocol automaton lowering (DESIGN.md §5i): compile the rule
  // base's STATE keys into per-task mixed-radix DFAs at commit time and
  // serve stateful decisions whose guards are digit-pure from the verdict
  // cache, with the task's current automaton state folded into the key. A
  // stateful cache hit replays the recorded dictionary writes and per-rule
  // hit counters bit-identically to a traversal (AUTOMATA ablation rung);
  // rules the pass cannot lower transparently stay on the bypass path.
  // Effective only together with verdict_cache.
  bool automata = true;
  // Evaluate hooks with the instruction interpreter over the commit-time
  // arena-packed program (program.h) instead of the legacy shared_ptr<Rule>
  // tree walker. Both produce bit-identical verdicts, stats, and side
  // effects (enforced by the COMPILED ablation rung and the differential
  // fuzz test); the flag exists for the ablation ladder and as a fallback.
  bool compiled_eval = true;
  // Dispatch the compiled evaluator through the computed-goto threaded
  // interpreter instead of the switch loop. Both are generated from the same
  // handler bodies (src/core/exec_insn.inc) and are bit-identical; the flag
  // exists for A/B benchmarking and as a portability fallback. Ignored (the
  // switch loop runs) when the build lacks computed goto — non-GNU
  // compilers, or -DPF_THREADED_DISPATCH=OFF at configure time.
  bool threaded_eval = true;
  // Dispatch Authorize through the tuple-space classifier (program.h): probe
  // one hash table per distinct exact-match dimension mask and evaluate only
  // the rules whose pinned key matches the request (plus the residual rules
  // with no exact dimension), merged back into chain order. Skipped rules
  // could only have failed their own guards, so verdicts, side effects, and
  // per-rule hit counters are bit-identical to the scan path (TUPLE ablation
  // rung); per-rule eval counters only drop for rules a scan would have
  // rejected. Off by default: the scan path is the correctness oracle, the
  // classifier is the 100k-rule scaling path (benches and the ablation rung
  // turn it on).
  bool tuple_dispatch = false;
  // Incremental CommitRuleset: when the staging edit touched only some
  // chains (per-chain edit sequences), copy the published program and
  // re-lower just the dirty chains instead of relowering everything. The
  // delta program is bit-equivalent to a from-scratch relower (churn test)
  // and is still verifier-gated before publication.
  bool incremental_commits = true;
  // Run the load-time PfInsn verifier (src/core/verify.h) as a mandatory
  // pass of CompileRuleset. A program with verification errors refuses to
  // publish: CommitRuleset returns the report as a Status error and the live
  // generation is left untouched. A pure gate for accepted programs
  // (enforced by the VERIFY ablation rung).
  bool verify_programs = true;
  // Audit mode: evaluate rules and count/log would-be denials, but allow
  // everything. This is how an OS distributor shakes out false positives
  // before enforcing a generated rule base (paper §6.3.2).
  bool audit_only = false;
};

// Aggregated engine statistics (a consistent-enough snapshot: each counter
// is the sum of the per-worker blocks at read time; see Engine::stats() for
// the exact tearing contract).
struct EngineStats {
  uint64_t invocations = 0;
  uint64_t drops = 0;
  uint64_t audited_drops = 0;  // denials suppressed by audit mode
  uint64_t rules_evaluated = 0;
  uint64_t ept_chain_hits = 0;
  uint64_t unwinds = 0;
  uint64_t unwind_cache_hits = 0;
  uint64_t ruleset_refreshes = 0;  // per-worker snapshot re-pins
  uint64_t vcache_hits = 0;        // verdicts served without traversal
  uint64_t vcache_misses = 0;      // traversed, then inserted
  uint64_t vcache_bypasses = 0;    // unlowerable stateful chains: never cached
  // Stateful-tier split of the totals above: hits/misses whose key carried
  // automaton state (also counted in vcache_hits/vcache_misses), and the
  // bypasses attributed to each kBypass* cause (the highest-priority set bit
  // of the applicable buckets' unioned causes; with the automaton pass on,
  // the array sums to vcache_bypasses — with it off no cause information
  // exists and only the total moves).
  uint64_t vcache_state_hits = 0;
  uint64_t vcache_state_misses = 0;
  std::array<uint64_t, kBypassCauseCount> vcache_bypass_causes{};
  uint64_t trace_records = 0;      // TraceRecords ever emitted
  uint64_t trace_drops = 0;        // records lost to full rings
  // Audit-pipeline conservation counters (src/audit): emitted = admitted +
  // suppressed; admitted records either drain, sit buffered, or are counted
  // in audit_ring_drops when a full ring evicted them unread.
  uint64_t audit_emitted = 0;
  uint64_t audit_records = 0;      // admitted into the per-worker rings
  uint64_t audit_suppressed = 0;   // collapsed by token-bucket suppression
  uint64_t audit_ring_drops = 0;   // evicted unread from full rings
  std::array<uint64_t, static_cast<size_t>(Ctx::kCount)> ctx_fetches{};
  // Counter-mutation generation at read time (see Engine::stats()). Odd, or
  // different before/after aggregation, means a reset/zeroing ran while this
  // snapshot was summed: `torn` is set and the values may mix pre- and
  // post-reset counts.
  uint64_t stats_generation = 0;
  bool torn = false;
};

// One per-worker ("per-CPU") counter block. The atomics are only ever
// contended when more threads than blocks exist (indices wrap); the common
// case is an uncontended relaxed add on a worker-private cache line.
struct alignas(64) EngineStatsBlock {
  std::atomic<uint64_t> invocations{0};
  std::atomic<uint64_t> drops{0};
  std::atomic<uint64_t> audited_drops{0};
  std::atomic<uint64_t> rules_evaluated{0};
  std::atomic<uint64_t> ept_chain_hits{0};
  std::atomic<uint64_t> unwinds{0};
  std::atomic<uint64_t> unwind_cache_hits{0};
  std::atomic<uint64_t> ruleset_refreshes{0};
  std::atomic<uint64_t> vcache_hits{0};
  std::atomic<uint64_t> vcache_misses{0};
  std::atomic<uint64_t> vcache_bypasses{0};
  std::atomic<uint64_t> vcache_state_hits{0};
  std::atomic<uint64_t> vcache_state_misses{0};
  std::array<std::atomic<uint64_t>, kBypassCauseCount> vcache_bypass_causes{};
  std::array<std::atomic<uint64_t>, static_cast<size_t>(Ctx::kCount)> ctx_fetches{};
};

// Stable index of the calling worker thread (monotonic per thread, assigned
// on first use). Shared by every engine instance in the process.
size_t WorkerIndex();

// An immutable unwind snapshot, valid while `serial` matches the task's
// syscall count. Published by shared_ptr so concurrent hook evaluations on
// one task can pin it while a newer syscall refreshes the cache.
struct StackSnapshot {
  uint64_t serial = 0;
  std::vector<BinFrame> frames;
  UnwindStatus status = UnwindStatus::kAborted;
};

struct InterpSnapshot {
  uint64_t serial = 0;
  std::vector<InterpRec> frames;
  UnwindStatus status = UnwindStatus::kAborted;
};

// Per-task Process Firewall state (the struct task_struct extension of the
// paper, held in the engine's shard table keyed by task id). Created lazily:
// only tasks that actually hit a stateful rule or a context unwind get one —
// the authorization fast path never touches the shard table.
struct PfTaskState {
  // Guards dict and the automaton-state cache below. Held for pointer-sized
  // critical sections.
  std::mutex mu;

  // STATE match/target dictionary.
  std::map<std::string, int64_t> dict;

  // Mutation sequence of `dict`, bumped under mu by every set/unset/replay
  // (exec_insn.inc, StateTarget::Fire, stateful cache-hit replay). The
  // stateful verdict-cache tier uses it two ways: to invalidate the derived
  // automaton-state cache below, and to prove a miss traversal ran free of
  // concurrent dictionary interference before inserting its verdict.
  uint64_t dict_seq = 0;

  // Cached DeriveAutomatonState result: the per-protocol digit products for
  // program `astate_tag` at dictionary version `astate_seq`. Guarded by mu;
  // rederived (a few map lookups) only when the dictionary moved.
  uint64_t astate_tag = 0;
  uint64_t astate_seq = ~0ull;
  std::vector<uint32_t> astate;

  // Context caches (null until first fill; reset on execve). Atomic
  // shared_ptr slots: a cache hit is one acquire load, a miss publishes its
  // snapshot with one release store — no lock round-trips on either path,
  // and a racing refresh simply wins with its own equally-valid snapshot.
  std::atomic<std::shared_ptr<const StackSnapshot>> stack;
  std::atomic<std::shared_ptr<const InterpSnapshot>> interp;
};

// Lock-striped per-task state table. Striping bounds contention when many
// workers fault in or look up state for different tasks concurrently.
class TaskStateStore {
 public:
  static constexpr size_t kShards = 16;  // power of two

  PfTaskState& GetOrCreate(sim::Pid pid);
  std::shared_ptr<PfTaskState> Find(sim::Pid pid);
  void Put(sim::Pid pid, std::shared_ptr<PfTaskState> state);
  void Erase(sim::Pid pid);
  size_t size() const;

 private:
  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::unordered_map<sim::Pid, std::shared_ptr<PfTaskState>> map;
  };

  Shard& ShardFor(sim::Pid pid) { return shards_[Mix(pid) & (kShards - 1)]; }
  const Shard& ShardFor(sim::Pid pid) const { return shards_[Mix(pid) & (kShards - 1)]; }
  static size_t Mix(sim::Pid pid) {
    uint64_t x = static_cast<uint64_t>(pid) * 0x9e3779b97f4a7c15ULL;
    return static_cast<size_t>(x >> 32);
  }

  std::array<Shard, kShards> shards_;
};

// Per-(chain, op) dispatch bucket, computed once per commit. `all` holds the
// chain's rules that can match the op (rules whose -o operand is absent or
// equal), in chain order; `plain` is the non-entrypoint-indexable subset used
// when the chain's entrypoint index is active. `needs` and `cacheable` are
// transitive over JUMP targets: the union of every reachable rule's context
// mask, and whether every reachable rule is a pure function of the
// verdict-cache key.
struct OpBucket {
  std::vector<const Rule*> all;
  std::vector<const Rule*> plain;
  CtxMask needs = 0;
  bool cacheable = true;
  bool has_indexed = false;  // some entrypoint-indexed rule can match the op
  // Pre-closure (chain-local) values of needs/cacheable plus the distinct
  // JUMP targets, captured in pass 1. The transitive-closure fixpoint (pass
  // 2) iterates these edges instead of every rule, and an incremental commit
  // resets a copied bucket to the base values before re-running the closure.
  CtxMask base_needs = 0;
  bool base_cacheable = true;
  std::vector<std::string> jump_targets;
};

// A chain plus its per-op dispatch table. `op_mask` bit i is set when
// ops[i].all is non-empty, so Authorize can skip a whole chain with one
// bit test.
struct CompiledChain {
  const Chain* chain = nullptr;
  uint64_t op_mask = 0;
  std::array<OpBucket, sim::kOpCount> ops;
  int32_t program_chain = -1;  // id of this chain in CompiledRuleset::program
};

// One published generation of the rule base: a structural copy of the
// staging RuleSet (sharing the heap-allocated Rule objects) with the builtin
// chains resolved once and the commit-time compilation results (per-op
// dispatch tables, transitive purity) attached.
struct CompiledRuleset {
  RuleSet rules;
  uint64_t generation = 0;
  const Chain* input = nullptr;
  const Chain* output = nullptr;
  const Chain* create = nullptr;
  const Chain* syscallbegin = nullptr;

  // Compilation results for every filter-table chain, keyed by the chain
  // object inside `rules` (std::map gives the chains stable addresses).
  std::map<const Chain*, CompiledChain> compiled;
  const CompiledChain* cc_input = nullptr;
  const CompiledChain* cc_output = nullptr;
  const CompiledChain* cc_create = nullptr;
  const CompiledChain* cc_syscallbegin = nullptr;

  // The arena-packed program form of the same generation (see program.h):
  // lowered by LowerProgram at the end of compilation, consumed by the
  // compiled evaluator, the static analyzer, and `pftables -L --compiled`.
  PfProgram program;

  // Load-time verification of `program` (src/core/verify.h), run by
  // CompileRuleset when EngineConfig::verify_programs is on. `verified` is
  // true iff the pass ran and proved the program safe; CommitRuleset refuses
  // to publish otherwise. pfcheck and pftables --check surface the report.
  analysis::AnalysisReport verify_report;
  bool verified = false;
  uint64_t verify_ns = 0;

  const CompiledChain* FindCompiled(const std::string& chain) const;
};

// Verdict-cache key: every input a *pure* traversal can read. The ruleset
// generation covers rule commits, the MAC epoch covers policy/label mutation
// (adversary accessibility, SYSHIGH), the object generation covers inode
// recycling, and relabels move object_sid. Entrypoint fields participate
// only when some applicable rule needs entrypoint context (kEptInKey), so
// pure non-entrypoint rulesets never force an unwind. Per-task state is
// never an input to a pure traversal, and the task-varying inputs that are
// (subject sid, entrypoint) sit in the key — so execve/exit need no sweep.
// The stateful tier (EngineConfig::automata) extends the same key with the
// inputs an automaton-lowered traversal can additionally read, each probed
// at key-build time so a change re-keys instead of staling: the task's
// folded automaton state (kStateInKey), the syscall number when a
// SYSCALL_ARGS --arg 0 guard is reachable (kNrInKey), and the
// SIGNAL_MATCH predicate — handler installed and signal blockable — as one
// bit (kSigHandled, meaningful under kSigInKey).
struct VerdictKey {
  enum Flags : uint32_t {
    kHasObject = 1u << 0,
    kEptInKey = 1u << 1,
    kEptValid = 1u << 2,
    kStateInKey = 1u << 3,
    kNrInKey = 1u << 4,
    kSigInKey = 1u << 5,
    kSigHandled = 1u << 6,
  };

  uint64_t generation = 0;
  uint64_t mac_epoch = 0;
  uint32_t op = 0;
  uint32_t flags = 0;
  sim::Sid subject_sid = sim::kInvalidSid;
  sim::Sid object_sid = sim::kInvalidSid;
  sim::FileId object;
  uint64_t object_generation = 0;
  sim::FileId ept_image;
  uint64_t ept_offset = 0;
  uint64_t astate = 0;      // FoldAutomatonState product (kStateInKey)
  uint32_t syscall_nr = 0;  // request syscall number (kNrInKey)

  bool operator==(const VerdictKey&) const = default;
};

struct VerdictKeyHash {
  size_t operator()(const VerdictKey& k) const {
    size_t h = std::hash<uint64_t>()(k.generation);
    h = HashCombine(h, std::hash<uint64_t>()(k.mac_epoch));
    h = HashCombine(h, std::hash<uint64_t>()((static_cast<uint64_t>(k.op) << 32) | k.flags));
    h = HashCombine(h, std::hash<uint64_t>()((static_cast<uint64_t>(k.subject_sid) << 32) |
                                             k.object_sid));
    h = HashCombine(h, sim::FileIdHash()(k.object));
    h = HashCombine(h, std::hash<uint64_t>()(k.object_generation));
    h = HashCombine(h, sim::FileIdHash()(k.ept_image));
    h = HashCombine(h, std::hash<uint64_t>()(k.ept_offset));
    h = HashCombine(h, std::hash<uint64_t>()(
                           k.astate ^ (static_cast<uint64_t>(k.syscall_nr) << 40)));
    return h;
  }
};

// One recorded STATE-dictionary write (or unset) of a stateful miss
// traversal, keyed by value (not pool index) so replay is independent of the
// evaluation path — compiled or legacy — that recorded it.
struct DictDelta {
  std::string key;
  bool unset = false;
  int64_t value = 0;
};

// The side effects a stateful cache hit must replay to stay bit-identical
// with a traversal: the rules whose hit counters a traversal from this exact
// key would bump (in traversal order) and the literal dictionary writes it
// would perform (which advance the automaton — the next probe re-derives the
// state vector from the mutated dictionary). Automaton-lowered buckets admit
// no LOG rules, so log order is preserved trivially. The Rule pointers stay
// valid while the entry's generation is pinned (same lifetime contract as
// the compiled program itself).
struct StatefulEffects {
  std::vector<const Rule*> hits;
  std::vector<DictDelta> deltas;
};

// A cached final verdict. `fx` is null for pure entries; stateful entries
// carry the replayable effects above. chain_id/rule_index name the rule that
// produced the verdict when the entry was inserted (-1 when the chain policy
// decided) — a pure function of the key, so replaying it on every hit keeps
// audit attribution of cached denials exact without a traversal.
struct CachedVerdict {
  bool drop = false;
  int32_t chain_id = -1;
  int32_t rule_index = -1;
  std::shared_ptr<const StatefulEffects> fx;
};

// Sharded, lock-striped verdict cache (the SELinux AVC analogue). Stores the
// final accept/drop of pure traversals — plus replayable effects for
// automaton-lowered stateful traversals; invalidation is by key construction
// (see VerdictKey), so the only maintenance is clearing dead generations on
// commit and dumping a shard that grows past its cap — the cache is a memo,
// never a source of truth.
class VerdictCache {
 public:
  static constexpr size_t kShards = 16;        // power of two
  static constexpr size_t kMaxPerShard = 4096; // dump-and-refill threshold

  std::optional<CachedVerdict> Lookup(const VerdictKey& key, size_t hash) const;
  void Insert(const VerdictKey& key, size_t hash, CachedVerdict verdict);
  void Clear();
  size_t size() const;

 private:
  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::unordered_map<VerdictKey, CachedVerdict, VerdictKeyHash> map;
  };

  std::array<Shard, kShards> shards_;
};

// Stateful-miss capture hooks. While Engine::Authorize runs a miss traversal
// it intends to cache with automaton state in the key, a thread-local
// capture is armed and every evaluation path — the compiled handlers in
// exec_insn.inc, the legacy walker's hit bump, StateTarget::Fire — reports
// rule hits and dictionary writes through these (no-ops when unarmed, one
// predictable branch). The capture becomes the entry's StatefulEffects.
void NoteRuleHit(const Rule* rule);
void NoteDictDelta(const std::string& key, bool unset, int64_t value);

// Audit-observer hook: while Engine::Authorize runs with the audit pipeline
// enabled, a thread-local observer is armed and every `@phase` dictionary
// write site — the compiled kStateSet handler, StateTarget/PhaseTarget::Fire,
// the stateful cache-hit replay — reports the transition through this (no-op
// when unarmed, one predictable branch on a path that already took a mutex).
void NotePhaseTransition(int64_t from, int64_t to);

class Engine : public sim::SecurityModule {
 public:
  Engine(sim::Kernel& kernel, EngineConfig config);

  // --- SecurityModule ---
  std::string_view ModuleName() const override { return "pf"; }
  int64_t Authorize(sim::AccessRequest& req) override;
  void OnTaskExit(sim::Task& task) override;
  void OnTaskFork(sim::Task& parent, sim::Task& child) override;
  void OnTaskExec(sim::Task& task) override;

  // --- configuration / data ---
  EngineConfig& config() { return config_; }
  // The staging rule base, edited by pftables. Structural edits are not seen
  // by hook evaluation until CommitRuleset() publishes a snapshot.
  RuleSet& ruleset() { return ruleset_; }
  LogSink& log() { return log_; }
  sim::Kernel& kernel() { return kernel_; }
  sim::MacPolicy& policy() { return kernel_.policy(); }
  void set_slot(size_t slot) { slot_ = slot; }
  size_t slot() const { return slot_; }

  // Aggregates the per-worker counter blocks.
  //
  // Tearing contract: every per-worker counter is read with a relaxed load
  // while workers keep adding, so the snapshot is not a point-in-time cut —
  // two counters may disagree by in-flight decisions (e.g. `drops` can
  // momentarily exceed what `invocations` implies). Each counter is
  // individually monotone between resets, and sums converge once workers
  // quiesce, which is all the stats consumers (benches, pfshell, metrics)
  // need. The one non-monotone hazard is a concurrent ResetStats() or
  // `pftables -Z`: those bump `stats_gen_` to odd for their duration, and
  // stats() re-reads the generation after aggregating — a reader that saw an
  // odd or moved generation gets `torn = true` in the snapshot and should
  // retry or discard (MetricsText() and pftrace do exactly that).
  EngineStats stats() const;
  void ResetStats();

  // Marks a counter-mutation window (even/odd generation) so concurrent
  // stats() readers can detect mid-zeroing aggregation. ResetStats() and
  // Pftables::ZeroCounters() bracket themselves with these; nesting is not
  // supported.
  void BeginCounterMutation() { stats_gen_.fetch_add(1, std::memory_order_acq_rel); }
  void EndCounterMutation() { stats_gen_.fetch_add(1, std::memory_order_acq_rel); }

  // The tracing control plane and record stream for this engine (src/trace).
  // Disabled (and nearly free) by default; compiled out under PF_NO_TRACE.
  trace::TraceHub& trace() { return trace_; }
  const trace::TraceHub& trace() const { return trace_; }

  // The security-event audit pipeline (src/audit, DESIGN.md §5j). Disabled
  // it costs one relaxed load per Authorize; compiled out under PF_AUDIT=OFF.
  audit::AuditHub& audit() { return audit_; }
  const audit::AuditHub& audit() const { return audit_; }

  // Prometheus text-exposition (format 0.0.4) of the engine counters, the
  // verdict-cache rates, the ring drop counters, and every non-empty
  // (op, path) latency histogram. `pfshell stats --prom` and the benches
  // serve this verbatim. Implemented in metrics.cc.
  std::string MetricsText() const;

  // Publishes the staging rule base as a new immutable generation. Called by
  // Pftables after every successful mutating command; safe to call while
  // worker threads evaluate. When the load-time verifier rejects the
  // compiled program (verify_programs on), nothing is published — the live
  // generation keeps serving and the error carries the verifier's report.
  Status CommitRuleset();

  // Compiles the staging rule base into a CompiledRuleset snapshot without
  // publishing it (generation stays 0). This is what the static analyzer
  // (src/analysis) and the pftables --check gate run over: analysis sees
  // exactly the structures hook evaluation would, including uncommitted
  // staging edits, with no effect on the live generation.
  std::shared_ptr<CompiledRuleset> CompileRuleset() const;

  // Incremental twin of CompileRuleset: copies `prev`'s program and
  // recompiles only the chains named in `dirty` (see EngineConfig::
  // incremental_commits). Requires the staging chain-name set to equal
  // prev's; CommitRuleset checks that via CanDeltaCompile.
  std::shared_ptr<CompiledRuleset> CompileRulesetDelta(
      const CompiledRuleset& prev, const std::vector<std::string>& dirty) const;

  // True when an incremental recompile against `prev` is sound; fills
  // `dirty` with the names of the chains whose edit sequence (or derived
  // index state) diverged from the published copy.
  bool CanDeltaCompile(const CompiledRuleset& prev,
                       std::vector<std::string>* dirty) const;

  // The currently published generation (nullptr before the first commit
  // completes — the constructor commits generation 1, so users always see a
  // snapshot). Tests and tools use this to inspect the delta-built program
  // that hooks actually execute; the hot path pins via worker slots instead.
  std::shared_ptr<const CompiledRuleset> PublishedRuleset() const {
    std::lock_guard<std::mutex> lock(commit_mu_);
    return published_;
  }

  uint64_t ruleset_generation() const {
    return generation_.load(std::memory_order_acquire);
  }
  // Commit-path split: how many publications went through the incremental
  // delta path vs a from-scratch relower (includes the compaction fallback).
  uint64_t delta_commits() const { return delta_commits_.load(std::memory_order_relaxed); }
  uint64_t full_commits() const { return full_commits_.load(std::memory_order_relaxed); }

  // Per-task state, created on demand in the shard table.
  PfTaskState& TaskState(sim::Task& task);
  size_t task_state_count() const { return states_.size(); }

  // Context-module dispatch: collects every field in `mask` not yet in the
  // packet. Fields that cannot be collected are marked collected-but-absent
  // (rules needing them simply fail to match).
  void EnsureContext(Packet& pkt, CtxMask mask);

  // Emits a LOG record for the packet.
  void EmitLog(Packet& pkt, const std::string& prefix);

 private:
  enum class Verdict { kAccept, kDrop, kFallthrough, kReturn };

  // Pins the current ruleset generation for this worker. `hold` keeps the
  // snapshot alive for callers beyond the per-worker slot capacity.
  const CompiledRuleset& PinRuleset(std::shared_ptr<const CompiledRuleset>* hold);

  EngineStatsBlock& StatsLocal();

  Verdict RunBuiltin(const CompiledRuleset& rs, const CompiledChain& cc, Packet& pkt);
  Verdict TraverseChain(const CompiledRuleset& rs, const CompiledChain& cc, Packet& pkt,
                        int depth);
  Verdict EvalRules(const CompiledRuleset& rs, const std::vector<const Rule*>& rules,
                    Packet& pkt, int depth);
  Verdict EvalRule(const CompiledRuleset& rs, const Rule& rule, Packet& pkt, int depth);
  bool DefaultMatches(const Rule& rule, Packet& pkt);

  // Compiled-program twins of the traversal above (engine.cc "compiled
  // evaluator"): a switch-dispatch loop over the arena, no virtual calls on
  // the builtin-module path. Selected by EngineConfig::compiled_eval.
  Verdict RunBuiltinCompiled(const CompiledRuleset& rs, const ProgramChain& pc,
                             Packet& pkt);
  Verdict ExecChain(const CompiledRuleset& rs, const ProgramChain& pc, Packet& pkt,
                    int depth);
  // op_checked: the entry list came from a per-op bucket (op-filtered by
  // construction), so rule bodies enter past their kCheckOp guard; the
  // entrypoint index's lists are not op-filtered and keep the guard.
  Verdict ExecEntries(const CompiledRuleset& rs, uint32_t off, uint32_t len,
                      bool op_checked, Packet& pkt, int depth);
  // The same evaluation loop over an arbitrary rule-record index list (the
  // tuple probe's merge buffer); ExecEntries forwards into it. Accounting is
  // shared, so classifier-reached rules bump eval/hit counters exactly as a
  // scan does.
  Verdict ExecEntryList(const CompiledRuleset& rs, const uint32_t* recs, uint32_t len,
                        bool op_checked, Packet& pkt, int depth);
  // Tuple-space dispatch for one (chain, op) bucket (EngineConfig::
  // tuple_dispatch): probe the bucket's per-mask hash tables, merge the
  // surviving slices back into chain order, and run the shared loop.
  Verdict ExecChainTuple(const CompiledRuleset& rs, const ProgramBucket& bucket,
                         Packet& pkt, int depth);
  // ExecRule picks a dispatch strategy per EngineConfig::threaded_eval. The
  // two strategies are expansions of the same handler bodies
  // (src/core/exec_insn.inc): ExecRuleSwitch is the portable switch loop,
  // ExecRuleThreaded the computed-goto threaded interpreter (defined only
  // when the toolchain supports it; the declaration is unconditional so the
  // header stays configuration-independent).
  Verdict ExecRule(const CompiledRuleset& rs, const RuleRecord& rec, uint32_t start,
                   Packet& pkt, int depth);
  Verdict ExecRuleSwitch(const CompiledRuleset& rs, const RuleRecord& rec, uint32_t start,
                         Packet& pkt, int depth);
  Verdict ExecRuleThreaded(const CompiledRuleset& rs, const RuleRecord& rec,
                           uint32_t start, Packet& pkt, int depth);

  void FetchObject(Packet& pkt);
  void FetchLinkTarget(Packet& pkt);
  void FetchAdversaryAccess(Packet& pkt);
  void FetchStack(Packet& pkt);
  void FetchInterp(Packet& pkt);

  sim::Kernel& kernel_;
  EngineConfig config_;
  RuleSet ruleset_;  // staging copy (control plane)
  LogSink log_;
  size_t slot_ = 0;

  TaskStateStore states_;
  VerdictCache vcache_;
  trace::TraceHub trace_;
  audit::AuditHub audit_;
  std::atomic<uint64_t> stats_gen_{0};  // even: stable; odd: mutation running

  // --- RCU-style ruleset publication ---
  static constexpr size_t kMaxWorkers = 64;
  struct alignas(64) WorkerSlot {
    std::shared_ptr<const CompiledRuleset> snap;
    uint64_t generation = ~0ull;
  };
  mutable std::mutex commit_mu_;  // guards published_/retired_ swaps
  std::shared_ptr<const CompiledRuleset> published_;
  // The generation most recently unpublished, kept so the next incremental
  // compile can recycle its allocations: when no reader still pins it
  // (use_count == 1), CompileRulesetDelta steals its containers and
  // copy-assigns the new generation into them — warm pages and reusable
  // map nodes instead of ~40MB of fresh allocations per one-rule commit at
  // 100k-rule scale. Never handed out; only swapped under commit_mu_.
  mutable std::shared_ptr<const CompiledRuleset> retired_;
  std::atomic<uint64_t> generation_{0};
  std::atomic<uint64_t> delta_commits_{0};
  std::atomic<uint64_t> full_commits_{0};
  std::array<WorkerSlot, kMaxWorkers> workers_;

  // Per-worker stats blocks (indices wrap; see EngineStatsBlock).
  static constexpr size_t kStatsBlocks = 64;
  std::array<EngineStatsBlock, kStatsBlocks> stats_blocks_;
};

// Creates an Engine, registers it with the kernel, and wires its per-task
// state slot. The kernel owns the engine; the returned pointer stays valid
// for the kernel's lifetime.
Engine* InstallProcessFirewall(sim::Kernel& kernel, EngineConfig config = {});

}  // namespace pf::core

#endif  // SRC_CORE_ENGINE_H_
