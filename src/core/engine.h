// The Process Firewall engine.
//
// Registered as a SecurityModule behind the kernel's authorization hooks, it
// builds a Packet for each mediated operation, fetches process/resource
// context through context modules (lazily, with per-syscall caching), and
// traverses the rule base — using entrypoint-specific chains where enabled.
// The three optimizations are independently toggleable to reproduce the
// ablation columns of paper Table 6:
//
//   FULL     = {lazy_context=false, cache_context=false, ept_chains=false}
//   CONCACHE = {lazy_context=false, cache_context=true,  ept_chains=false}
//   LAZYCON  = {lazy_context=true,  cache_context=true,  ept_chains=false}
//   EPTSPC   = {lazy_context=true,  cache_context=true,  ept_chains=true}
//
// Per-task state (the STATE dictionary, context caches, traversal depth)
// hangs off the task structure, so the engine is re-entrant without
// disabling "interrupts" (paper §5.1).
#ifndef SRC_CORE_ENGINE_H_
#define SRC_CORE_ENGINE_H_

#include <array>
#include <map>
#include <memory>
#include <string>

#include "src/core/log.h"
#include "src/core/packet.h"
#include "src/core/ruleset.h"
#include "src/sim/kernel.h"

namespace pf::core {

struct EngineConfig {
  bool enabled = true;
  bool lazy_context = true;   // fetch context only when a rule needs it
  bool cache_context = true;  // reuse unwinds across hooks within a syscall
  bool ept_chains = true;     // entrypoint-specific chain index
  // Audit mode: evaluate rules and count/log would-be denials, but allow
  // everything. This is how an OS distributor shakes out false positives
  // before enforcing a generated rule base (paper §6.3.2).
  bool audit_only = false;
};

struct EngineStats {
  uint64_t invocations = 0;
  uint64_t drops = 0;
  uint64_t audited_drops = 0;  // denials suppressed by audit mode
  uint64_t rules_evaluated = 0;
  uint64_t ept_chain_hits = 0;
  uint64_t unwinds = 0;
  uint64_t unwind_cache_hits = 0;
  std::array<uint64_t, static_cast<size_t>(Ctx::kCount)> ctx_fetches{};

  void Reset() { *this = EngineStats{}; }
};

// Per-task Process Firewall state (struct task_struct extension).
struct PfTaskState {
  // STATE match/target dictionary.
  std::map<std::string, int64_t> dict;

  // Context caches, valid while serial == task.syscall_count.
  uint64_t stack_serial = 0;
  bool stack_cached = false;
  std::vector<BinFrame> stack;
  UnwindStatus stack_status = UnwindStatus::kAborted;

  uint64_t interp_serial = 0;
  bool interp_cached = false;
  std::vector<InterpRec> interp;
  UnwindStatus interp_status = UnwindStatus::kAborted;

  int traversal_depth = 0;
};

class Engine : public sim::SecurityModule {
 public:
  Engine(sim::Kernel& kernel, EngineConfig config);

  // --- SecurityModule ---
  std::string_view ModuleName() const override { return "pf"; }
  int64_t Authorize(sim::AccessRequest& req) override;
  void OnTaskExit(sim::Task& task) override;
  void OnTaskFork(sim::Task& parent, sim::Task& child) override;

  // --- configuration / data ---
  EngineConfig& config() { return config_; }
  RuleSet& ruleset() { return ruleset_; }
  LogSink& log() { return log_; }
  EngineStats& stats() { return stats_; }
  sim::Kernel& kernel() { return kernel_; }
  sim::MacPolicy& policy() { return kernel_.policy(); }
  void set_slot(size_t slot) { slot_ = slot; }
  size_t slot() const { return slot_; }

  // Per-task state, created on demand.
  PfTaskState& TaskState(sim::Task& task);

  // Context-module dispatch: collects every field in `mask` not yet in the
  // packet. Fields that cannot be collected are marked collected-but-absent
  // (rules needing them simply fail to match).
  void EnsureContext(Packet& pkt, CtxMask mask);

  // Emits a LOG record for the packet.
  void EmitLog(Packet& pkt, const std::string& prefix);

 private:
  enum class Verdict { kAccept, kDrop, kFallthrough, kReturn };

  Verdict TraverseChain(const Chain& chain, Packet& pkt, int depth);
  Verdict EvalRules(const std::vector<const Rule*>& rules, Packet& pkt, int depth);
  Verdict EvalRulesLinear(const std::vector<Rule>& rules, Packet& pkt, int depth);
  Verdict EvalRule(const Rule& rule, Packet& pkt, int depth);
  bool DefaultMatches(const Rule& rule, Packet& pkt);

  void FetchObject(Packet& pkt);
  void FetchLinkTarget(Packet& pkt);
  void FetchAdversaryAccess(Packet& pkt);
  void FetchStack(Packet& pkt);
  void FetchInterp(Packet& pkt);

  sim::Kernel& kernel_;
  EngineConfig config_;
  RuleSet ruleset_;
  LogSink log_;
  EngineStats stats_;
  size_t slot_ = 0;

  // Builtin chains, resolved once (std::map nodes are pointer-stable); this
  // keeps string-keyed lookups off the per-operation fast path.
  const Chain* chain_input_ = nullptr;
  const Chain* chain_output_ = nullptr;
  const Chain* chain_create_ = nullptr;
  const Chain* chain_syscallbegin_ = nullptr;
};

// Creates an Engine, registers it with the kernel, and wires its per-task
// state slot. The kernel owns the engine; the returned pointer stays valid
// for the kernel's lifetime.
Engine* InstallProcessFirewall(sim::Kernel& kernel, EngineConfig config = {});

}  // namespace pf::core

#endif  // SRC_CORE_ENGINE_H_
