#include "src/core/log.h"

#include <cctype>
#include <map>
#include <sstream>

namespace pf::core {

namespace {
void JsonField(std::ostringstream& oss, const char* key, const std::string& value,
               bool* first) {
  if (!*first) {
    oss << ",";
  }
  *first = false;
  oss << "\"" << key << "\":\"";
  for (char c : value) {
    if (c == '"' || c == '\\') {
      oss << '\\';
    }
    oss << c;
  }
  oss << "\"";
}

void JsonField(std::ostringstream& oss, const char* key, uint64_t value, bool* first) {
  if (!*first) {
    oss << ",";
  }
  *first = false;
  oss << "\"" << key << "\":" << value;
}

void JsonField(std::ostringstream& oss, const char* key, bool value, bool* first) {
  if (!*first) {
    oss << ",";
  }
  *first = false;
  oss << "\"" << key << "\":" << (value ? "true" : "false");
}
}  // namespace

std::string LogRecord::ToJson() const {
  std::ostringstream oss;
  bool first = true;
  oss << "{";
  JsonField(oss, "tick", tick, &first);
  JsonField(oss, "pid", static_cast<uint64_t>(pid), &first);
  JsonField(oss, "comm", comm, &first);
  JsonField(oss, "exe", exe, &first);
  JsonField(oss, "op", std::string(sim::OpName(op)), &first);
  JsonField(oss, "syscall", syscall, &first);
  JsonField(oss, "subject", subject_label, &first);
  JsonField(oss, "object", object_label, &first);
  JsonField(oss, "dev", static_cast<uint64_t>(object.dev), &first);
  JsonField(oss, "ino", object.ino, &first);
  JsonField(oss, "name", name, &first);
  JsonField(oss, "entry_valid", entry_valid, &first);
  JsonField(oss, "program", program, &first);
  JsonField(oss, "entrypoint", entrypoint, &first);
  JsonField(oss, "adv_w", adversary_writable, &first);
  JsonField(oss, "adv_r", adversary_readable, &first);
  if (!prefix.empty()) {
    JsonField(oss, "prefix", prefix, &first);
  }
  oss << "}";
  return oss.str();
}

std::string LogSink::ToJsonLines() const {
  std::ostringstream oss;
  for (const LogRecord& r : records_) {
    oss << r.ToJson() << "\n";
  }
  return oss.str();
}

namespace {

// Minimal parser for the flat JSON objects ToJson emits (string, integer,
// and boolean values; no nesting).
class FlatJsonParser {
 public:
  explicit FlatJsonParser(std::string_view text) : text_(text) {}

  bool Parse() {
    SkipWs();
    if (!Consume('{')) {
      return false;
    }
    for (;;) {
      SkipWs();
      if (Consume('}')) {
        return true;
      }
      std::string key;
      if (!ParseString(&key)) {
        return false;
      }
      SkipWs();
      if (!Consume(':')) {
        return false;
      }
      SkipWs();
      if (text_.empty()) {
        return false;
      }
      if (text_[0] == '"') {
        std::string value;
        if (!ParseString(&value)) {
          return false;
        }
        strings_[key] = std::move(value);
      } else if (text_.rfind("true", 0) == 0) {
        bools_[key] = true;
        text_.remove_prefix(4);
      } else if (text_.rfind("false", 0) == 0) {
        bools_[key] = false;
        text_.remove_prefix(5);
      } else {
        size_t used = 0;
        uint64_t value = 0;
        while (used < text_.size() && (std::isdigit(static_cast<unsigned char>(text_[used])))) {
          value = value * 10 + static_cast<uint64_t>(text_[used] - '0');
          ++used;
        }
        if (used == 0) {
          return false;
        }
        numbers_[key] = value;
        text_.remove_prefix(used);
      }
      SkipWs();
      if (!Consume(',') && text_.empty()) {
        return false;
      }
    }
  }

  std::string Str(const std::string& key) const {
    auto it = strings_.find(key);
    return it == strings_.end() ? "" : it->second;
  }
  uint64_t Num(const std::string& key) const {
    auto it = numbers_.find(key);
    return it == numbers_.end() ? 0 : it->second;
  }
  bool Bool(const std::string& key) const {
    auto it = bools_.find(key);
    return it != bools_.end() && it->second;
  }

 private:
  void SkipWs() {
    while (!text_.empty() && (text_[0] == ' ' || text_[0] == '\t')) {
      text_.remove_prefix(1);
    }
  }
  bool Consume(char c) {
    if (!text_.empty() && text_[0] == c) {
      text_.remove_prefix(1);
      return true;
    }
    return false;
  }
  bool ParseString(std::string* out) {
    if (!Consume('"')) {
      return false;
    }
    out->clear();
    while (!text_.empty()) {
      char c = text_[0];
      text_.remove_prefix(1);
      if (c == '"') {
        return true;
      }
      if (c == '\\') {
        if (text_.empty()) {
          return false;
        }
        out->push_back(text_[0]);
        text_.remove_prefix(1);
      } else {
        out->push_back(c);
      }
    }
    return false;
  }

  std::string_view text_;
  std::map<std::string, std::string> strings_;
  std::map<std::string, uint64_t> numbers_;
  std::map<std::string, bool> bools_;
};

}  // namespace

std::optional<LogRecord> LogRecord::FromJson(std::string_view line) {
  FlatJsonParser parser(line);
  if (!parser.Parse()) {
    return std::nullopt;
  }
  LogRecord rec;
  rec.tick = parser.Num("tick");
  rec.pid = static_cast<sim::Pid>(parser.Num("pid"));
  rec.comm = parser.Str("comm");
  rec.exe = parser.Str("exe");
  if (auto op = sim::OpFromName(parser.Str("op"))) {
    rec.op = *op;
  } else {
    return std::nullopt;
  }
  rec.syscall = parser.Str("syscall");
  rec.subject_label = parser.Str("subject");
  rec.object_label = parser.Str("object");
  rec.object.dev = static_cast<sim::Dev>(parser.Num("dev"));
  rec.object.ino = parser.Num("ino");
  rec.name = parser.Str("name");
  rec.entry_valid = parser.Bool("entry_valid");
  rec.program = parser.Str("program");
  rec.entrypoint = parser.Num("entrypoint");
  rec.adversary_writable = parser.Bool("adv_w");
  rec.adversary_readable = parser.Bool("adv_r");
  rec.prefix = parser.Str("prefix");
  return rec;
}

size_t LogSink::FromJsonLines(std::string_view dump) {
  size_t parsed = 0;
  size_t i = 0;
  while (i < dump.size()) {
    size_t j = dump.find('\n', i);
    if (j == std::string_view::npos) {
      j = dump.size();
    }
    if (auto rec = LogRecord::FromJson(dump.substr(i, j - i))) {
      records_.push_back(std::move(*rec));
      ++parsed;
    }
    i = j + 1;
  }
  return parsed;
}

}  // namespace pf::core
