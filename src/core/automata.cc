// STATE-protocol automaton lowering (automata.h; DESIGN.md §5i).
//
// The pass runs at the end of CompileRuleset (after LowerProgram built the
// arena and the bucket tables, before the load-time verifier proves the
// result) and works entirely on the instruction stream — the same extraction
// the analyzer's protocol lints use — so what it classifies is exactly what
// the evaluator will execute:
//
//   1. Scan: per chain, one fused pass collects the STATE facts — which
//      keys each rule touches (the protocol's co-occurrence edges) and the
//      literal each guard compares or each target stores (the key's
//      abstract domain) — and writes each record's pool-independent
//      classification (bypass causes from non-STATE ops, nr/sig key
//      demands) onto the RuleRecord itself. Facts are cached on
//      ProgramChain so a delta commit can prove the pools unchanged without
//      rescanning clean chains.
//   2. Pools: union-find the keys into protocols, sort everything by name
//      and value for determinism, and emit the mixed-radix AutomatonKey /
//      AutomatonProtocol pools. A key with too many literals or a protocol
//      whose digit product overflows is dropped whole — its rules keep the
//      bypass path (cause kBypassState) instead of lowering unsoundly.
//   3. Classification: resolve the pool-dependent half (protocol id, domain
//      overflow) by rescanning only the records that touch STATE, proving
//      every instruction's outcome a pure function of (VerdictKey, digit
//      vector, syscall nr, signal bit) or recording the cause that keeps it
//      on the bypass path; fold the records into per-bucket base values and
//      close them over JUMP edges, mirroring the OpBucket purity closure.
//
// Soundness of the digit abstraction: a digit is 0 (absent), 1..n (one of
// the n literals any rule in the program compares or stores for the key),
// or n+1 ("other": present with a value outside the domain). Every lowered
// guard compares against an in-domain literal, so "other" uniformly fails
// equality and passes inequality; every lowered write stores an in-domain
// literal. The task's digit vector is always derived from the live STATE
// dictionary (never incrementally shadowed), so writes by *unlowered* rules
// — variable operands, cross-rule interference — are reflected the moment
// they bump the dictionary sequence.

#include "src/core/automata.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "src/core/engine.h"

namespace pf::core {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

// --- Facts ----------------------------------------------------------------

void AddLiteral(std::vector<int64_t>& domain, int64_t value) {
  auto it = std::lower_bound(domain.begin(), domain.end(), value);
  if (it == domain.end() || *it != value) {
    domain.insert(it, value);
  }
}

bool OperandCovered(const PfProgram& prog, uint64_t idx) {
  return idx < prog.operands.size() && prog.operands[idx].CoveredByVerdictKey();
}

// One fused pass over a chain's instruction stream: collects the chain's
// STATE facts (domains + co-occurrence groups, the delta-commit cache) and
// writes every record's pool-INDEPENDENT classification — bypass causes from
// non-STATE ops, the nr/sig key demands, and whether the record touches
// state at all — into the record itself (astate_causes raw, astate_flags).
// ClassifyChain then resolves the pool-DEPENDENT half (protocol id, domain
// overflow) by rescanning only records flagged kAstateHasState, so a program
// with no STATE rules classifies without a second instruction-stream pass.
ChainStateFacts ScanChain(PfProgram& prog, const ProgramChain& pc) {
  ChainStateFacts facts;
  std::vector<std::string> keys;
  for (uint32_t rec_idx : pc.rules) {
    RuleRecord& rec = prog.rules[rec_idx];
    if (rec.rule == nullptr) {
      continue;
    }
    uint8_t causes = 0;
    uint8_t flags = kAstateScanned;
    keys.clear();
    for (uint32_t p = rec.entry; p < rec.end; p += kPfInsnWords) {
      const PfInsn insn = prog.Fetch(p);
      switch (static_cast<PfOp>(insn.op)) {
        case PfOp::kMatchState:
        case PfOp::kMatchStateEq:
        case PfOp::kMatchStateNe:
        case PfOp::kStateSet:
        case PfOp::kStateUnset:
        case PfOp::kMatchPhase: {
          const std::optional<InsnStateRef> ref = StateRefOfInsn(prog, insn);
          if (!ref.has_value()) {
            break;
          }
          flags |= kAstateHasState;
          std::string key(ref->key);
          if (ref->variable) {
            causes |= kBypassState;
          }
          if (ref->literal.has_value()) {
            AddLiteral(facts.domains[key], *ref->literal);
          }
          if (ref->phase) {
            // The absent "@phase" key means the distinguished init phase, so
            // the init id is always part of the domain (a phase guard
            // comparing against it must see a dedicated digit, not "other").
            AddLiteral(facts.domains[key], PhaseId(kPhaseInitName));
          }
          if (std::find(keys.begin(), keys.end(), key) == keys.end()) {
            keys.push_back(std::move(key));
          }
          break;
        }
        case PfOp::kMatchSignal:
          flags |= kAstateSigInKey;
          break;
        case PfOp::kMatchSyscallArg:
          if (insn.aux == 0) {
            flags |= kAstateNrInKey;
          } else {
            causes |= kBypassSyscallArgs;
          }
          break;
        case PfOp::kMatchSyscallNrEq:
        case PfOp::kMatchSyscallNrNe:
          flags |= kAstateNrInKey;
          break;
        case PfOp::kMatchSyscallArgEq:
        case PfOp::kMatchSyscallArgNe:
          causes |= kBypassSyscallArgs;
          break;
        case PfOp::kMatchCompare:
        case PfOp::kMatchCompareEq:
        case PfOp::kMatchCompareNe:
          if (!OperandCovered(prog, insn.b) || !OperandCovered(prog, insn.c)) {
            causes |= kBypassCompare;
          }
          break;
        case PfOp::kMatchInterp:
          causes |= kBypassInterp;
          break;
        case PfOp::kLog:
          causes |= kBypassLog;
          break;
        case PfOp::kMatchNative:
          if (insn.a >= prog.native_matches.size() ||
              !prog.native_matches[insn.a]->CacheableByKey()) {
            causes |= kBypassNative;
          }
          break;
        case PfOp::kTargetNative:
          if (insn.a >= prog.native_targets.size() ||
              !prog.native_targets[insn.a]->CacheableByKey()) {
            causes |= kBypassNative;
          }
          break;
        default:
          break;  // default-match guards and terminals: pure by key
      }
    }
    rec.astate_causes = causes;
    rec.astate_flags = flags;
    rec.astate_protocol = -1;
    if (!keys.empty()) {
      std::sort(keys.begin(), keys.end());
      facts.rule_keys.push_back(keys);
    }
  }
  return facts;
}

// --- Pool construction ----------------------------------------------------

// Key-name union-find (protocol = connected component under rule
// co-occurrence). Few keys; simplicity over path compression.
struct KeyForest {
  std::map<std::string, std::string> parent;

  void Add(const std::string& key) { parent.emplace(key, key); }
  const std::string& Find(const std::string& key) {
    std::string cur = key;
    while (parent.at(cur) != cur) {
      cur = parent.at(cur);
    }
    // One-pass shortening: point the chain at the root.
    std::string walk = key;
    while (parent.at(walk) != cur) {
      walk = std::exchange(parent.at(walk), cur);
    }
    return parent.find(cur)->first;
  }
  void Union(const std::string& a, const std::string& b) {
    const std::string ra = Find(a);
    const std::string rb = Find(b);
    if (ra != rb) {
      // Deterministic orientation: the lexicographically smaller name roots.
      parent.at(std::max(ra, rb)) = std::min(ra, rb);
    }
  }
};

// Where a key landed in the pools: protocol id, or dropped by a cap.
struct KeyIndex {
  std::map<std::string, uint16_t> protocol_of;
  std::set<std::string> overflowed;
};

KeyIndex BuildPools(PfProgram& prog) {
  prog.automaton_keys.clear();
  prog.automaton_values.clear();
  prog.automaton_protocols.clear();

  // Merge every chain's cached facts.
  std::map<std::string, std::vector<int64_t>> domains;
  KeyForest forest;
  for (const ProgramChain& pc : prog.chains) {
    for (const auto& [key, values] : pc.state_facts.domains) {
      std::vector<int64_t>& dom = domains[key];
      forest.Add(key);
      for (int64_t v : values) {
        AddLiteral(dom, v);
      }
    }
    for (const std::vector<std::string>& group : pc.state_facts.rule_keys) {
      for (const std::string& key : group) {
        domains.try_emplace(key);
        forest.Add(key);
      }
      for (size_t i = 1; i < group.size(); ++i) {
        forest.Union(group[0], group[i]);
      }
    }
  }

  // Group by root; std::map iteration orders protocols (and their keys) by
  // name, so pool layout is deterministic across rebuilds and deltas.
  std::map<std::string, std::vector<std::string>> components;
  for (const auto& [key, dom] : domains) {
    components[forest.Find(key)].push_back(key);
  }

  KeyIndex index;
  ProgramBuilder builder(prog);
  for (const auto& [root, keys] : components) {
    uint64_t states = 1;
    bool overflow = false;
    for (const std::string& key : keys) {
      const size_t cnt = domains.at(key).size();
      if (cnt > kMaxAutomatonValues) {
        overflow = true;
        break;
      }
      states *= cnt + 2;
      if (states > kMaxAutomatonStates) {
        overflow = true;
        break;
      }
    }
    if (overflow) {
      index.overflowed.insert(keys.begin(), keys.end());
      continue;
    }
    AutomatonProtocol proto;
    proto.key_off = static_cast<uint32_t>(prog.automaton_keys.size());
    proto.key_cnt = static_cast<uint32_t>(keys.size());
    uint32_t stride = 1;
    for (const std::string& key : keys) {
      const std::vector<int64_t>& dom = domains.at(key);
      AutomatonKey ak;
      ak.name = builder.InternString(key);
      ak.value_off = static_cast<uint32_t>(prog.automaton_values.size());
      ak.value_cnt = static_cast<uint32_t>(dom.size());
      ak.radix = ak.value_cnt + 2;
      ak.stride = stride;
      ak.phase = key == kPhaseKeyName ? 1 : 0;
      stride *= ak.radix;
      proto.phase |= ak.phase;
      prog.automaton_values.insert(prog.automaton_values.end(), dom.begin(), dom.end());
      prog.automaton_keys.push_back(ak);
    }
    proto.state_count = stride;
    const uint16_t id = static_cast<uint16_t>(prog.automaton_protocols.size());
    for (const std::string& key : keys) {
      index.protocol_of.emplace(key, id);
    }
    prog.automaton_protocols.push_back(proto);
  }
  return index;
}

// --- Classification -------------------------------------------------------

// Pool-dependent half of a state-touching record's classification: resolve
// each STATE key against the (re)built pools — overflowed keys and variable
// operands keep the record on the bypass path, in-pool keys pin its
// protocol. Rescans only this record's instruction slice; the raw scan
// already proved which records need it (kAstateHasState).
void ResolveStateRecord(const PfProgram& prog, RuleRecord& rec, const KeyIndex& index) {
  uint8_t causes = rec.astate_causes & static_cast<uint8_t>(~kBypassState);
  int16_t protocol = -1;
  for (uint32_t p = rec.entry; p < rec.end; p += kPfInsnWords) {
    const std::optional<InsnStateRef> ref = StateRefOfInsn(prog, prog.Fetch(p));
    if (!ref.has_value()) {
      continue;
    }
    const std::string key(ref->key);
    if (ref->variable || index.overflowed.count(key) != 0) {
      causes |= kBypassState;
      continue;
    }
    const auto it = index.protocol_of.find(key);
    if (it == index.protocol_of.end()) {
      causes |= kBypassState;  // unreachable by construction
    } else {
      protocol = static_cast<int16_t>(it->second);
    }
  }
  rec.astate_causes = causes;
  rec.astate_protocol = protocol;
}

void MergeProtocol(std::vector<uint16_t>& protocols, uint16_t id) {
  auto it = std::lower_bound(protocols.begin(), protocols.end(), id);
  if (it == protocols.end() || *it != id) {
    protocols.insert(it, id);
  }
}

// Per-chain base classification: resolve the pool-dependent half of every
// state-touching record (the raw scan already classified the rest), then
// fold the records' cached fields into the chain's per-op buckets (and
// collect the buckets' JUMP edges).
void ClassifyChain(PfProgram& prog, ProgramChain& pc, const KeyIndex& index) {
  for (uint32_t rec_idx : pc.rules) {
    RuleRecord& rec = prog.rules[rec_idx];
    if (rec.rule != nullptr && (rec.astate_flags & kAstateHasState) != 0) {
      ResolveStateRecord(prog, rec, index);
    }
  }
  for (ProgramBucket& b : pc.ops) {
    b.astate_base = BucketAutomata{};
    b.astate_jumps.clear();
    for (uint32_t i = 0; i < b.all_len; ++i) {
      const uint32_t rec_idx = prog.entries[b.all_off + i];
      const RuleRecord& rec = prog.rules[rec_idx];
      if (rec.rule == nullptr || (rec.astate_flags & kAstateScanned) == 0) {
        continue;
      }
      b.astate_base.causes |= rec.astate_causes;
      b.astate_base.nr_in_key |= (rec.astate_flags & kAstateNrInKey) != 0;
      b.astate_base.sig_in_key |= (rec.astate_flags & kAstateSigInKey) != 0;
      if (rec.astate_protocol >= 0) {
        MergeProtocol(b.astate_base.protocols,
                      static_cast<uint16_t>(rec.astate_protocol));
      }
      if (rec.jump_chain >= 0 &&
          std::find(b.astate_jumps.begin(), b.astate_jumps.end(), rec.jump_chain) ==
              b.astate_jumps.end()) {
        b.astate_jumps.push_back(rec.jump_chain);
      }
    }
    b.astate = b.astate_base;
  }
}

// JUMP-edge closure, the automata twin of Engine::CloseBucketPurity: a
// bucket inherits every reachable bucket's causes, key fields, and protocol
// set. Monotone over a finite lattice, so the fixpoint terminates.
void CloseAutomata(PfProgram& prog) {
  for (ProgramChain& pc : prog.chains) {
    for (ProgramBucket& b : pc.ops) {
      b.astate = b.astate_base;
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (ProgramChain& pc : prog.chains) {
      for (size_t op = 0; op < pc.ops.size(); ++op) {
        ProgramBucket& b = pc.ops[op];
        for (int32_t target : b.astate_jumps) {
          const BucketAutomata& t =
              prog.chains[static_cast<size_t>(target)].ops[op].astate;
          const uint8_t causes = b.astate.causes | t.causes;
          if (causes != b.astate.causes) {
            b.astate.causes = causes;
            changed = true;
          }
          if ((t.nr_in_key && !b.astate.nr_in_key) ||
              (t.sig_in_key && !b.astate.sig_in_key)) {
            b.astate.nr_in_key |= t.nr_in_key;
            b.astate.sig_in_key |= t.sig_in_key;
            changed = true;
          }
          for (uint16_t id : t.protocols) {
            const size_t before = b.astate.protocols.size();
            MergeProtocol(b.astate.protocols, id);
            changed |= b.astate.protocols.size() != before;
          }
        }
      }
    }
  }
}

void RebuildFromFacts(PfProgram& prog) {
  const KeyIndex index = BuildPools(prog);
  for (ProgramChain& pc : prog.chains) {
    ClassifyChain(prog, pc, index);
  }
  CloseAutomata(prog);
}

KeyIndex IndexFromPools(const PfProgram& prog) {
  KeyIndex index;
  for (uint16_t id = 0; id < prog.automaton_protocols.size(); ++id) {
    const AutomatonProtocol& proto = prog.automaton_protocols[id];
    for (uint32_t k = 0; k < proto.key_cnt; ++k) {
      index.protocol_of.emplace(prog.strings[prog.automaton_keys[proto.key_off + k].name],
                                id);
    }
  }
  // Keys present in facts but absent from the pools were dropped by a cap.
  for (const ProgramChain& pc : prog.chains) {
    for (const auto& [key, dom] : pc.state_facts.domains) {
      if (index.protocol_of.find(key) == index.protocol_of.end()) {
        index.overflowed.insert(key);
      }
    }
    for (const std::vector<std::string>& group : pc.state_facts.rule_keys) {
      for (const std::string& key : group) {
        if (index.protocol_of.find(key) == index.protocol_of.end()) {
          index.overflowed.insert(key);
        }
      }
    }
  }
  return index;
}

}  // namespace

std::optional<InsnStateRef> StateRefOfInsn(const PfProgram& prog, const PfInsn& insn) {
  InsnStateRef ref;
  switch (static_cast<PfOp>(insn.op)) {
    case PfOp::kMatchState:
    case PfOp::kMatchStateEq:
    case PfOp::kMatchStateNe: {
      ref.key = prog.strings[insn.a];
      ref.is_check = true;
      const bool has_cmp = static_cast<PfOp>(insn.op) != PfOp::kMatchState ||
                           (insn.flags & kPfHasCmp) != 0;
      if (has_cmp) {
        const Operand& cmp = prog.operands[insn.b];
        if (cmp.is_var) {
          ref.variable = true;
        } else {
          ref.literal = cmp.literal;
        }
      }
      return ref;
    }
    case PfOp::kStateSet: {
      ref.key = prog.strings[insn.a];
      ref.is_set = true;
      const Operand& value = prog.operands[insn.b];
      if (value.is_var) {
        ref.variable = true;
      } else {
        ref.literal = value.literal;
      }
      return ref;
    }
    case PfOp::kStateUnset:
      ref.key = prog.strings[insn.a];
      ref.is_unset = true;
      return ref;
    case PfOp::kMatchPhase:
      ref.key = kPhaseKeyName;
      ref.is_check = true;
      ref.phase = true;
      ref.literal = static_cast<int64_t>(insn.b);
      return ref;
    default:
      return std::nullopt;
  }
}

const char* BypassCauseName(uint8_t bit) {
  switch (bit) {
    case kBypassState:
      return "state";
    case kBypassSyscallArgs:
      return "syscall-args";
    case kBypassLog:
      return "log";
    case kBypassInterp:
      return "interp";
    case kBypassCompare:
      return "compare";
    case kBypassNative:
      return "native";
    default:
      return "unknown";
  }
}

std::string RenderBypassCauses(uint8_t causes) {
  std::string out;
  for (size_t i = 0; i < kBypassCauseCount; ++i) {
    const uint8_t bit = static_cast<uint8_t>(1u << i);
    if ((causes & bit) != 0) {
      if (!out.empty()) {
        out += '+';
      }
      out += BypassCauseName(bit);
    }
  }
  return out;
}

void BuildAutomata(CompiledRuleset& snap) {
  const uint64_t t0 = NowNs();
  PfProgram& prog = snap.program;
  for (ProgramChain& pc : prog.chains) {
    pc.state_facts = ScanChain(prog, pc);
  }
  RebuildFromFacts(prog);
  prog.automata_built = true;
  prog.automata_build_ns = NowNs() - t0;
}

void BuildAutomataDelta(CompiledRuleset& snap, const std::vector<std::string>& dirty) {
  const uint64_t t0 = NowNs();
  PfProgram& prog = snap.program;
  if (!prog.automata_built) {
    BuildAutomata(snap);
    return;
  }
  bool facts_changed = false;
  for (const std::string& name : dirty) {
    const int32_t id = prog.FindChain(name);
    if (id < 0) {
      continue;
    }
    ProgramChain& pc = prog.chains[static_cast<size_t>(id)];
    ChainStateFacts facts = ScanChain(prog, pc);
    if (!(facts == pc.state_facts)) {
      facts_changed = true;
    }
    pc.state_facts = std::move(facts);
  }
  if (facts_changed) {
    // The edit moved a STATE fact, so the pools (or a cap decision) may have
    // changed under every chain: rebuild from the merged facts. Clean
    // chains' facts are already cached — only their classification rescans.
    RebuildFromFacts(prog);
  } else {
    // Pools provably unchanged: reclassify the dirty chains' new records and
    // rerun the (cheap) global closure over the copied base values.
    const KeyIndex index = IndexFromPools(prog);
    for (const std::string& name : dirty) {
      const int32_t id = prog.FindChain(name);
      if (id >= 0) {
        ClassifyChain(prog, prog.chains[static_cast<size_t>(id)], index);
      }
    }
    CloseAutomata(prog);
  }
  prog.automata_build_ns += NowNs() - t0;
}

const std::vector<uint32_t>& DeriveAutomatonState(const PfProgram& prog, uint64_t tag,
                                                  PfTaskState& state) {
  const size_t protocols = prog.automaton_protocols.size();
  if (state.astate_tag == tag && state.astate_seq == state.dict_seq &&
      state.astate.size() == protocols) {
    return state.astate;
  }
  state.astate.assign(protocols, 0);
  for (size_t pi = 0; pi < protocols; ++pi) {
    const AutomatonProtocol& proto = prog.automaton_protocols[pi];
    uint32_t sigma = 0;
    for (uint32_t k = 0; k < proto.key_cnt; ++k) {
      const AutomatonKey& key = prog.automaton_keys[proto.key_off + k];
      const auto it = state.dict.find(prog.strings[key.name]);
      uint32_t digit = 0;
      if (it != state.dict.end()) {
        const auto begin = prog.automaton_values.begin() + key.value_off;
        const auto end = begin + key.value_cnt;
        const auto pos = std::lower_bound(begin, end, it->second);
        digit = (pos != end && *pos == it->second)
                    ? static_cast<uint32_t>(pos - begin) + 1
                    : key.radix - 1;
      }
      sigma += digit * key.stride;
    }
    state.astate[pi] = sigma;
  }
  state.astate_tag = tag;
  state.astate_seq = state.dict_seq;
  return state.astate;
}

std::optional<uint64_t> FoldAutomatonState(const PfProgram& prog,
                                           const std::vector<uint16_t>& protocols,
                                           const std::vector<uint32_t>* astate) {
  uint64_t folded = 0;
  uint64_t stride = 1;
  for (uint16_t id : protocols) {
    if (id >= prog.automaton_protocols.size()) {
      return std::nullopt;
    }
    const uint64_t count = prog.automaton_protocols[id].state_count;
    if (count == 0 || stride > ~0ull / count) {
      return std::nullopt;
    }
    const uint32_t sigma =
        (astate != nullptr && id < astate->size()) ? (*astate)[id] : 0;
    folded += sigma * stride;
    stride *= count;
  }
  return folded;
}

AutomataStats ComputeAutomataStats(const PfProgram& prog) {
  AutomataStats stats;
  stats.protocols = static_cast<uint32_t>(prog.automaton_protocols.size());
  stats.keys = static_cast<uint32_t>(prog.automaton_keys.size());
  for (const AutomatonProtocol& proto : prog.automaton_protocols) {
    stats.states += proto.state_count;
    stats.phase_protocols += proto.phase != 0 ? 1 : 0;
  }
  for (const ProgramChain& pc : prog.chains) {
    for (uint32_t rec_idx : pc.rules) {
      const RuleRecord& rec = prog.rules[rec_idx];
      if (rec.rule == nullptr) {
        continue;
      }
      if (rec.astate_causes != 0) {
        ++stats.bypass_rules;
      } else if (rec.astate_protocol >= 0) {
        ++stats.lowered_rules;
      }
    }
    for (const ProgramBucket& b : pc.ops) {
      // A state bucket is one the stateful tier serves: admissible (no
      // bypass cause) and actually in need of the extended key. Checking the
      // key demand rather than !cacheable keeps the count delta-stable —
      // ProgramBucket::cacheable is not refreshed on clean chains by a delta
      // commit (the engine's own purity closure is), and a pure bucket never
      // demands key extensions anyway.
      if (b.all_len > 0 && b.astate.causes == 0 &&
          (!b.astate.protocols.empty() || b.astate.nr_in_key || b.astate.sig_in_key)) {
        ++stats.state_buckets;
      }
    }
  }
  return stats;
}

}  // namespace pf::core
