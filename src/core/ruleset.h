// Tables and chains of rules, with the entrypoint-specific chain index
// (paper §4.3): because (nearly) all invariants are deny rules associated
// with a specific entrypoint, rules indexable by (program, entrypoint) are
// grouped into per-entrypoint chains and looked up by hash, while the
// remaining rules are scanned first.
//
// Rules are held by shared_ptr so a Chain (and therefore a Table / RuleSet)
// is cheaply copyable: a copy shares the immutable Rule objects and their
// counters. The engine exploits this for its RCU-style ruleset swap — each
// pftables commit publishes a copied snapshot while hook-side readers keep
// traversing the generation they pinned (see engine.h, "Concurrency model"
// in DESIGN.md).
#ifndef SRC_CORE_RULESET_H_
#define SRC_CORE_RULESET_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/rule.h"

namespace pf::core {

struct EptKey {
  sim::FileId file;
  uint64_t offset = 0;
  bool operator==(const EptKey&) const = default;
};

// Boost-style hash combine. A plain XOR of the two component hashes made
// every `offset == 0` key hash to FileIdHash(file) ^ hash(0) — all
// call-site-less keys of one binary collapsed into a single bucket chain.
inline size_t HashCombine(size_t h1, size_t h2) {
  return h1 ^ (h2 + 0x9e3779b97f4a7c15ULL + (h1 << 6) + (h1 >> 2));
}

struct EptKeyHash {
  size_t operator()(const EptKey& k) const {
    return HashCombine(sim::FileIdHash()(k.file), std::hash<uint64_t>()(k.offset));
  }
};

// The derived entrypoint index of one chain, immutable once built. Held by
// shared_ptr so Chain (and therefore snapshot) copies share it instead of
// duplicating a potentially 100k-node hash map per generation — a one-rule
// delta commit must not pay an O(total rules) map copy for every clean
// chain. Entries point at the shared heap-allocated Rule objects, so a
// shared index stays valid for every copy that references it.
struct ChainIndex {
  std::vector<const Rule*> plain;
  std::unordered_map<EptKey, std::vector<const Rule*>, EptKeyHash> by_ept;
};

class Chain {
 public:
  Chain() = default;
  Chain(std::string name, bool builtin) : name_(std::move(name)), builtin_(builtin) {}

  const std::string& name() const { return name_; }
  bool builtin() const { return builtin_; }

  // Default verdict when no rule decides (builtin chains only; user chains
  // fall through to their caller). The paper's deployment uses ACCEPT
  // everywhere (deny rules + default allow); DROP turns a chain into a
  // whitelist, at the cost of rule-order sensitivity.
  enum class Policy { kAccept, kDrop };
  Policy policy() const { return policy_; }
  void set_policy(Policy p) {
    policy_ = p;
    ++edit_seq_;
  }

  // Monotonic edit sequence, bumped by every rule-list or policy mutation
  // (not by BuildIndex, which only derives state). The engine's incremental
  // CommitRuleset compares a staging chain's sequence against the published
  // snapshot's copy to find the dirty chains that need relowering; snapshot
  // copies freeze the value, so an equal sequence proves an identical chain.
  uint64_t edit_seq() const { return edit_seq_; }

  void Insert(std::shared_ptr<Rule> rule, size_t pos);  // pos clamped to [0, size]
  void Append(std::shared_ptr<Rule> rule);
  bool Delete(size_t pos);
  void Flush();

  const std::vector<std::shared_ptr<Rule>>& rules() const { return rules_; }
  const Rule& rule_at(size_t i) const { return *rules_[i]; }
  size_t size() const { return rules_.size(); }

  // --- entrypoint index ---
  void BuildIndex();
  bool index_built() const { return index_built_; }
  const std::vector<const Rule*>& plain_rules() const { return index().plain; }
  const std::vector<const Rule*>* EptRules(const EptKey& key) const;
  size_t indexed_entrypoints() const { return index().by_ept.size(); }
  // Whole-index view for the commit-time lowering pass (program.h), which
  // re-points every per-entrypoint rule list at entry-table slices.
  const std::unordered_map<EptKey, std::vector<const Rule*>, EptKeyHash>& ept_index() const {
    return index().by_ept;
  }

 private:
  void InvalidateIndex();
  const ChainIndex& index() const;  // index_ when set, a shared empty otherwise

  std::string name_;
  bool builtin_ = false;
  Policy policy_ = Policy::kAccept;
  uint64_t edit_seq_ = 0;
  std::vector<std::shared_ptr<Rule>> rules_;

  // Derived entrypoint index, shared by Chain copies (see ChainIndex). Null
  // until BuildIndex runs or after a mutation invalidates it.
  bool index_built_ = false;
  std::shared_ptr<const ChainIndex> index_;
};

class Table {
 public:
  explicit Table(std::string name) : name_(std::move(name)) {
    // Builtin chains (paper Table 3 plus the syscall-entry and create
    // chains used by rules R12 and template T2).
    chains_.emplace("input", Chain("input", true));
    chains_.emplace("output", Chain("output", true));
    chains_.emplace("create", Chain("create", true));
    chains_.emplace("syscallbegin", Chain("syscallbegin", true));
  }

  const std::string& name() const { return name_; }
  Chain* Find(const std::string& chain);
  const Chain* Find(const std::string& chain) const;
  Chain& GetOrCreate(const std::string& chain);
  bool NewChain(const std::string& chain);  // false if it already exists
  void FlushAll();

  const std::map<std::string, Chain>& chains() const { return chains_; }
  std::map<std::string, Chain>& chains() { return chains_; }
  size_t total_rules() const;

 private:
  std::string name_;
  std::map<std::string, Chain> chains_;
};

class RuleSet {
 public:
  RuleSet() : filter_("filter"), mangle_("mangle") {}

  Table* FindTable(const std::string& name) {
    if (name == "filter") {
      return &filter_;
    }
    if (name == "mangle") {
      return &mangle_;
    }
    return nullptr;
  }
  Table& filter() { return filter_; }
  const Table& filter() const { return filter_; }
  Table& mangle() { return mangle_; }
  const Table& mangle() const { return mangle_; }
  size_t total_rules() const { return filter_.total_rules() + mangle_.total_rules(); }

 private:
  Table filter_;
  Table mangle_;
};

}  // namespace pf::core

#endif  // SRC_CORE_RULESET_H_
