#include "src/core/modules.h"

#include <charconv>
#include <mutex>
#include <sstream>

#include "src/core/engine.h"
#include "src/core/program.h"
#include "src/core/symbolize.h"
#include "src/sim/syscall_nr.h"
#include "src/sim/task.h"

namespace pf::core {

namespace {

std::optional<int64_t> ParseInt(const std::string& token) {
  if (token.empty()) {
    return std::nullopt;
  }
  int base = 10;
  size_t start = 0;
  bool negative = false;
  if (token[0] == '-') {
    negative = true;
    start = 1;
  }
  if (token.size() > start + 2 && token[start] == '0' &&
      (token[start + 1] == 'x' || token[start + 1] == 'X')) {
    base = 16;
    start += 2;
  }
  int64_t value = 0;
  auto [ptr, ec] =
      std::from_chars(token.data() + start, token.data() + token.size(), value, base);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return std::nullopt;
  }
  return negative ? -value : value;
}

// Finds "--flag" and returns the following token.
std::optional<std::string> OptValue(const std::vector<std::string>& opts,
                                    std::string_view flag) {
  for (size_t i = 0; i + 1 < opts.size(); ++i) {
    if (opts[i] == flag) {
      return opts[i + 1];
    }
  }
  return std::nullopt;
}

bool HasFlag(const std::vector<std::string>& opts, std::string_view flag) {
  for (const auto& o : opts) {
    if (o == flag) {
      return true;
    }
  }
  return false;
}

// Strips optional single quotes (keys are often written as 'sig').
std::string Unquote(std::string s) {
  if (s.size() >= 2 && s.front() == '\'' && s.back() == '\'') {
    return s.substr(1, s.size() - 2);
  }
  return s;
}

}  // namespace

// --- Operand -------------------------------------------------------------------

std::optional<Operand> Operand::Parse(const std::string& token) {
  Operand op;
  if (auto var = CtxVarFromName(token)) {
    op.is_var = true;
    op.var = *var;
    return op;
  }
  if (auto nr = sim::SyscallFromName(token); nr && token.rfind("NR_", 0) == 0) {
    op.literal = static_cast<int64_t>(*nr);
    return op;
  }
  if (auto lit = ParseInt(token)) {
    op.literal = *lit;
    return op;
  }
  return std::nullopt;
}

std::optional<int64_t> Operand::Eval(const Packet& pkt) const {
  if (is_var) {
    return pkt.Resolve(var);
  }
  return literal;
}

CtxMask Operand::Needs() const {
  if (!is_var) {
    return 0;
  }
  switch (var) {
    case CtxVar::kIno:
    case CtxVar::kGen:
    case CtxVar::kDev:
    case CtxVar::kSid:
    case CtxVar::kDacOwner:
      return CtxBit(Ctx::kObject);
    case CtxVar::kTgtDacOwner:
    case CtxVar::kTgtSid:
      return CtxBit(Ctx::kObject) | CtxBit(Ctx::kLinkTarget);
    case CtxVar::kPid:
    case CtxVar::kUid:
    case CtxVar::kEuid:
    case CtxVar::kSig:
    case CtxVar::kSyscall:
      return 0;
  }
  return 0;
}

bool Operand::CoveredByVerdictKey() const {
  if (!is_var) {
    return true;
  }
  switch (var) {
    case CtxVar::kIno:
    case CtxVar::kGen:
    case CtxVar::kDev:
    case CtxVar::kSid:
      // Object identity fields; all present in the verdict-cache key, and
      // relabels / inode replacement move the key with them.
      return true;
    default:
      // C_DAC_OWNER changes under chown without moving any key component;
      // symlink-target fields are re-resolved per access (TOCTTOU window);
      // pid/uid/sig/syscall vary per request outside the key.
      return false;
  }
}

std::string Operand::Render() const {
  if (is_var) {
    return std::string(CtxVarName(var));
  }
  return std::to_string(literal);
}

// --- StateMatch ------------------------------------------------------------------

Status StateMatch::Create(const std::vector<std::string>& opts,
                          std::unique_ptr<MatchModule>* out) {
  auto m = std::make_unique<StateMatch>();
  auto key = OptValue(opts, "--key");
  if (!key) {
    return Status::Error("STATE match requires --key");
  }
  m->key = Unquote(*key);
  if (auto cmp = OptValue(opts, "--cmp")) {
    auto operand = Operand::Parse(*cmp);
    if (!operand) {
      return Status::Error("STATE --cmp: cannot parse operand '" + *cmp + "'");
    }
    m->cmp = *operand;
  }
  if (HasFlag(opts, "--nequal")) {
    m->negate = true;
  }
  *out = std::move(m);
  return Status::Ok();
}

CtxMask StateMatch::Needs() const { return cmp ? cmp->Needs() : 0; }

bool StateMatch::Matches(Packet& pkt, Engine& engine) const {
  PfTaskState& state = engine.TaskState(*pkt.req->task);
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.dict.find(key);
  if (it == state.dict.end()) {
    return false;  // absent key never matches (even with --nequal)
  }
  if (!cmp) {
    return true;
  }
  auto want = cmp->Eval(pkt);
  if (!want) {
    return false;
  }
  bool equal = it->second == *want;
  return negate ? !equal : equal;
}

std::string StateMatch::Render() const {
  std::ostringstream oss;
  oss << "STATE --key " << key;
  if (cmp) {
    oss << " --cmp " << cmp->Render() << (negate ? " --nequal" : " --equal");
  }
  return oss.str();
}

// --- SignalMatch ------------------------------------------------------------------

Status SignalMatch::Create(const std::vector<std::string>& opts,
                           std::unique_ptr<MatchModule>* out) {
  if (!opts.empty()) {
    return Status::Error("SIGNAL_MATCH takes no options");
  }
  *out = std::make_unique<SignalMatch>();
  return Status::Ok();
}

bool SignalMatch::Matches(Packet& pkt, Engine&) const {
  const sim::AccessRequest& req = *pkt.req;
  if (req.op != sim::Op::kSignalDeliver) {
    return false;
  }
  return req.task->signals.HasHandler(req.sig) && !sim::IsUnblockable(req.sig);
}

std::string SignalMatch::Render() const { return "SIGNAL_MATCH"; }

// --- SyscallArgsMatch --------------------------------------------------------------

Status SyscallArgsMatch::Create(const std::vector<std::string>& opts,
                                std::unique_ptr<MatchModule>* out) {
  auto m = std::make_unique<SyscallArgsMatch>();
  auto arg = OptValue(opts, "--arg");
  if (!arg) {
    return Status::Error("SYSCALL_ARGS requires --arg");
  }
  auto idx = ParseInt(*arg);
  if (!idx || *idx < 0 || *idx > 4) {
    return Status::Error("SYSCALL_ARGS --arg must be 0..4");
  }
  m->arg = static_cast<int>(*idx);
  auto eq = OptValue(opts, "--equal");
  auto neq = OptValue(opts, "--nequal");
  const std::string* value = eq ? &*eq : (neq ? &*neq : nullptr);
  if (value == nullptr) {
    return Status::Error("SYSCALL_ARGS requires --equal or --nequal");
  }
  m->negate = neq != std::nullopt;
  if (auto nr = sim::SyscallFromName(*value); nr && value->rfind("NR_", 0) == 0) {
    m->value = static_cast<int64_t>(*nr);
  } else if (auto lit = ParseInt(*value)) {
    m->value = *lit;
  } else {
    return Status::Error("SYSCALL_ARGS: cannot parse value '" + *value + "'");
  }
  *out = std::move(m);
  return Status::Ok();
}

bool SyscallArgsMatch::Matches(Packet& pkt, Engine&) const {
  const sim::AccessRequest& req = *pkt.req;
  int64_t actual = arg == 0 ? static_cast<int64_t>(req.syscall_nr)
                            : req.args[static_cast<size_t>(arg - 1)];
  bool equal = actual == value;
  return negate ? !equal : equal;
}

std::string SyscallArgsMatch::Render() const {
  std::ostringstream oss;
  oss << "SYSCALL_ARGS --arg " << arg << (negate ? " --nequal " : " --equal ") << value;
  return oss.str();
}

// --- CompareMatch ------------------------------------------------------------------

Status CompareMatch::Create(const std::vector<std::string>& opts,
                            std::unique_ptr<MatchModule>* out) {
  auto m = std::make_unique<CompareMatch>();
  auto v1 = OptValue(opts, "--v1");
  auto v2 = OptValue(opts, "--v2");
  if (!v1 || !v2) {
    return Status::Error("COMPARE requires --v1 and --v2");
  }
  auto o1 = Operand::Parse(*v1);
  auto o2 = Operand::Parse(*v2);
  if (!o1 || !o2) {
    return Status::Error("COMPARE: cannot parse operands");
  }
  m->v1 = *o1;
  m->v2 = *o2;
  m->negate = HasFlag(opts, "--nequal");
  *out = std::move(m);
  return Status::Ok();
}

bool CompareMatch::Matches(Packet& pkt, Engine&) const {
  auto a = v1.Eval(pkt);
  auto b = v2.Eval(pkt);
  if (!a || !b) {
    return false;  // missing context: cannot claim a match
  }
  bool equal = *a == *b;
  return negate ? !equal : equal;
}

std::string CompareMatch::Render() const {
  std::ostringstream oss;
  oss << "COMPARE --v1 " << v1.Render() << " --v2 " << v2.Render()
      << (negate ? " --nequal" : " --equal");
  return oss.str();
}

// --- InterpMatch -------------------------------------------------------------------

Status InterpMatch::Create(const std::vector<std::string>& opts,
                           std::unique_ptr<MatchModule>* out) {
  auto m = std::make_unique<InterpMatch>();
  if (auto script = OptValue(opts, "--script")) {
    m->script_suffix = *script;
  }
  if (auto lang = OptValue(opts, "--lang")) {
    if (*lang == "php") {
      m->lang = sim::InterpLang::kPhp;
    } else if (*lang == "python") {
      m->lang = sim::InterpLang::kPython;
    } else if (*lang == "bash") {
      m->lang = sim::InterpLang::kBash;
    } else {
      return Status::Error("INTERP --lang must be php|python|bash");
    }
  }
  if (m->script_suffix.empty() && !m->lang) {
    return Status::Error("INTERP requires --script and/or --lang");
  }
  *out = std::move(m);
  return Status::Ok();
}

bool InterpMatch::Matches(Packet& pkt, Engine&) const {
  if (pkt.interp == nullptr || pkt.interp_status == UnwindStatus::kAborted ||
      pkt.interp->empty()) {
    return false;
  }
  const InterpRec& top = pkt.interp->front();
  if (lang && top.lang != *lang) {
    return false;
  }
  if (!script_suffix.empty()) {
    const std::string& path = top.script_path;
    if (path.size() < script_suffix.size() ||
        path.compare(path.size() - script_suffix.size(), std::string::npos,
                     script_suffix) != 0) {
      return false;
    }
  }
  return true;
}

bool InterpMatch::Subsumes(const MatchModule& other) const {
  const auto* o = dynamic_cast<const InterpMatch*>(&other);
  if (o == nullptr) {
    return false;
  }
  if (lang && (!o->lang || *o->lang != *lang)) {
    return false;
  }
  // Every script path ending in o's (longer) suffix also ends in ours.
  if (script_suffix.size() > o->script_suffix.size()) {
    return false;
  }
  return o->script_suffix.compare(o->script_suffix.size() - script_suffix.size(),
                                  std::string::npos, script_suffix) == 0;
}

std::string InterpMatch::Render() const {
  std::ostringstream oss;
  oss << "INTERP";
  if (!script_suffix.empty()) {
    oss << " --script " << script_suffix;
  }
  if (lang) {
    oss << " --lang "
        << (*lang == sim::InterpLang::kPhp
                ? "php"
                : *lang == sim::InterpLang::kPython ? "python" : "bash");
  }
  return oss.str();
}

// --- PhaseMatch --------------------------------------------------------------------

Status PhaseMatch::Create(const std::vector<std::string>& opts,
                          std::unique_ptr<MatchModule>* out) {
  auto m = std::make_unique<PhaseMatch>();
  auto name = OptValue(opts, "--is");
  if (!name) {
    return Status::Error("PHASE match requires --is");
  }
  m->phase = Unquote(*name);
  if (m->phase.empty()) {
    return Status::Error("PHASE --is: phase name must be non-empty");
  }
  m->negate = HasFlag(opts, "--nequal");
  *out = std::move(m);
  return Status::Ok();
}

bool PhaseMatch::Matches(Packet& pkt, Engine& engine) const {
  PfTaskState& state = engine.TaskState(*pkt.req->task);
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.dict.find(std::string(kPhaseKeyName));
  // Unlike STATE, an absent key is a defined phase: init.
  int64_t current = it == state.dict.end() ? PhaseId(kPhaseInitName) : it->second;
  bool equal = current == PhaseId(phase);
  return negate ? !equal : equal;
}

std::string PhaseMatch::Render() const {
  std::ostringstream oss;
  oss << "PHASE --is " << phase;
  if (negate) {
    oss << " --nequal";
  }
  return oss.str();
}

// --- targets -----------------------------------------------------------------------

std::string_view VerdictTarget::Name() const {
  switch (kind_) {
    case TargetKind::kAccept: return "ACCEPT";
    case TargetKind::kDrop: return "DROP";
    case TargetKind::kReturn: return "RETURN";
    default: return "CONTINUE";
  }
}

TargetKind VerdictTarget::Fire(Packet&, Engine&) const { return kind_; }

Status StateTarget::Create(const std::vector<std::string>& opts,
                           std::unique_ptr<TargetModule>* out) {
  auto t = std::make_unique<StateTarget>();
  auto key = OptValue(opts, "--key");
  if (!key) {
    return Status::Error("STATE target requires --key");
  }
  t->key = Unquote(*key);
  t->unset = HasFlag(opts, "--unset");
  if (!t->unset) {
    if (!HasFlag(opts, "--set")) {
      return Status::Error("STATE target requires --set or --unset");
    }
    auto value = OptValue(opts, "--value");
    if (!value) {
      return Status::Error("STATE --set requires --value");
    }
    auto operand = Operand::Parse(*value);
    if (!operand) {
      return Status::Error("STATE --value: cannot parse '" + *value + "'");
    }
    t->value = *operand;
  }
  *out = std::move(t);
  return Status::Ok();
}

TargetKind StateTarget::Fire(Packet& pkt, Engine& engine) const {
  PfTaskState& state = engine.TaskState(*pkt.req->task);
  std::lock_guard<std::mutex> lock(state.mu);
  if (unset) {
    state.dict.erase(key);
    ++state.dict_seq;
    NoteDictDelta(key, /*unset=*/true, 0);
    return TargetKind::kContinue;
  }
  if (auto v = value.Eval(pkt)) {
    if (key == kPhaseKeyName) {
      // Audit emit point (legacy walker): a STATE write to the @phase key is
      // a protocol-phase transition, same as the compiled kStateSet handler.
      auto it = state.dict.find(key);
      NotePhaseTransition(it != state.dict.end() ? it->second : PhaseId(kPhaseInitName),
                          *v);
    }
    state.dict[key] = *v;
    ++state.dict_seq;
    NoteDictDelta(key, /*unset=*/false, *v);
  }
  return TargetKind::kContinue;
}

std::string StateTarget::Render() const {
  std::ostringstream oss;
  oss << "STATE " << (unset ? "--unset" : "--set") << " --key " << key;
  if (!unset) {
    oss << " --value " << value.Render();
  }
  return oss.str();
}

Status PhaseTarget::Create(const std::vector<std::string>& opts,
                           std::unique_ptr<TargetModule>* out) {
  auto t = std::make_unique<PhaseTarget>();
  auto name = OptValue(opts, "--enter");
  if (!name) {
    return Status::Error("PHASE target requires --enter");
  }
  t->phase = Unquote(*name);
  if (t->phase.empty()) {
    return Status::Error("PHASE --enter: phase name must be non-empty");
  }
  *out = std::move(t);
  return Status::Ok();
}

TargetKind PhaseTarget::Fire(Packet& pkt, Engine& engine) const {
  PfTaskState& state = engine.TaskState(*pkt.req->task);
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.dict.find(std::string(kPhaseKeyName));
  NotePhaseTransition(it != state.dict.end() ? it->second : PhaseId(kPhaseInitName),
                      PhaseId(phase));
  state.dict[std::string(kPhaseKeyName)] = PhaseId(phase);
  ++state.dict_seq;
  NoteDictDelta(std::string(kPhaseKeyName), /*unset=*/false, PhaseId(phase));
  return TargetKind::kContinue;
}

std::string PhaseTarget::Render() const { return "PHASE --enter " + phase; }

Status LogTarget::Create(const std::vector<std::string>& opts,
                         std::unique_ptr<TargetModule>* out) {
  auto t = std::make_unique<LogTarget>();
  if (auto prefix = OptValue(opts, "--prefix")) {
    t->prefix = Unquote(*prefix);
  }
  *out = std::move(t);
  return Status::Ok();
}

TargetKind LogTarget::Fire(Packet& pkt, Engine& engine) const {
  engine.EmitLog(pkt, prefix);
  return TargetKind::kContinue;
}

std::string LogTarget::Render() const {
  return prefix.empty() ? "LOG" : "LOG --prefix " + prefix;
}

// --- lowering ----------------------------------------------------------------------
//
// Each builtin module compiles to exactly one inline-operand instruction whose
// evaluator case (engine.cc ExecRule) replicates Matches()/Fire() bit for bit.
// Extension modules keep the base-class default and run through the
// kMatchNative/kTargetNative escapes instead.

bool StateMatch::Lower(ProgramBuilder& b) const {
  // The comparison-sense branch is resolved at compile time: --cmp lowers to
  // a specialized Eq/Ne form so the evaluator never tests kPfHasCmp or
  // kPfNegate on the hot path. The flags are still set — the disassembler
  // renders all three forms identically off the flag bits, and the generic
  // kMatchState handler stays correct for hand-built programs.
  PfInsn insn{};
  insn.op = static_cast<uint8_t>(PfOp::kMatchState);
  insn.a = b.InternString(key);
  if (cmp) {
    insn.flags |= kPfHasCmp;
    insn.b = b.InternOperand(*cmp);
    insn.op = static_cast<uint8_t>(negate ? PfOp::kMatchStateNe : PfOp::kMatchStateEq);
  }
  if (negate) {
    insn.flags |= kPfNegate;
  }
  b.Emit(insn);
  return true;
}

bool SignalMatch::Lower(ProgramBuilder& b) const {
  PfInsn insn{};
  insn.op = static_cast<uint8_t>(PfOp::kMatchSignal);
  b.Emit(insn);
  return true;
}

bool SyscallArgsMatch::Lower(ProgramBuilder& b) const {
  // Resolve the arg-0-means-syscall-number convention and the negation sense
  // at compile time; the specialized handlers read the value directly.
  PfInsn insn{};
  if (arg == 0) {
    insn.op = static_cast<uint8_t>(negate ? PfOp::kMatchSyscallNrNe : PfOp::kMatchSyscallNrEq);
  } else {
    insn.op = static_cast<uint8_t>(negate ? PfOp::kMatchSyscallArgNe : PfOp::kMatchSyscallArgEq);
  }
  insn.aux = static_cast<uint16_t>(arg);
  insn.b = static_cast<uint64_t>(value);
  if (negate) {
    insn.flags |= kPfNegate;
  }
  b.Emit(insn);
  return true;
}

bool CompareMatch::Lower(ProgramBuilder& b) const {
  PfInsn insn{};
  insn.op = static_cast<uint8_t>(negate ? PfOp::kMatchCompareNe : PfOp::kMatchCompareEq);
  insn.b = b.InternOperand(v1);
  insn.c = b.InternOperand(v2);
  if (negate) {
    insn.flags |= kPfNegate;
  }
  b.Emit(insn);
  return true;
}

bool PhaseMatch::Lower(ProgramBuilder& b) const {
  // Phase names compile down to their stable 63-bit ids, so the handler is a
  // single integer compare against the task's "@phase" entry (absent means
  // PhaseId("init")) and the automaton pass can treat the guard as a
  // literal-domain digit check.
  PfInsn insn{};
  insn.op = static_cast<uint8_t>(PfOp::kMatchPhase);
  insn.a = b.InternString(phase);  // keeps the listing symbolic
  insn.b = static_cast<uint64_t>(PhaseId(phase));
  if (negate) {
    insn.flags |= kPfNegate;
  }
  b.Emit(insn);
  return true;
}

bool InterpMatch::Lower(ProgramBuilder& b) const {
  PfInsn insn{};
  insn.op = static_cast<uint8_t>(PfOp::kMatchInterp);
  insn.a = b.InternString(script_suffix);
  insn.aux = lang ? static_cast<uint16_t>(*lang) + 1 : 0;
  b.Emit(insn);
  return true;
}

// --- symbolic lowering (src/analysis/symbolic) -------------------------------

bool StateMatch::Symbolize(SymbolicSink& sink) const {
  if (cmp && cmp->is_var) {
    return false;  // variable comparison value: model as opaque
  }
  sink.StateCheck(key, cmp ? std::optional<int64_t>(cmp->literal) : std::nullopt,
                  negate);
  return true;
}

bool SignalMatch::Symbolize(SymbolicSink& sink) const {
  // Handled-and-blockable is a property of the delivering task's handler
  // table, outside the decision dimensions — but the op pin is exact.
  sink.OpPin(sim::Op::kSignalDeliver);
  sink.Opaque(Name(), Render());
  return true;
}

bool SyscallArgsMatch::Symbolize(SymbolicSink& sink) const {
  sink.SyscallArg(arg, value, negate);
  return true;
}

bool CompareMatch::Symbolize(SymbolicSink& sink) const {
  if (!v1.is_var && !v2.is_var) {
    sink.Const((v1.literal == v2.literal) != negate);
    return true;
  }
  return false;  // variable operands: model as opaque
}

bool InterpMatch::Symbolize(SymbolicSink& sink) const {
  sink.Interp(script_suffix, lang);
  return true;
}

bool PhaseMatch::Symbolize(SymbolicSink& sink) const {
  // StateCheck's contract is absent-never-matches, but an absent "@phase"
  // key IS the init phase — so a phase guard is not expressible as a state
  // check. Render-keyed opacity still lets identical guards shadow exactly.
  sink.Opaque(Name(), Render());
  return true;
}

bool VerdictTarget::Lower(ProgramBuilder& b) const {
  PfInsn insn{};
  switch (kind_) {
    case TargetKind::kAccept:
      insn.op = static_cast<uint8_t>(PfOp::kAccept);
      break;
    case TargetKind::kDrop:
      insn.op = static_cast<uint8_t>(PfOp::kDrop);
      break;
    case TargetKind::kReturn:
      insn.op = static_cast<uint8_t>(PfOp::kReturn);
      break;
    default:
      insn.op = static_cast<uint8_t>(PfOp::kContinue);
      break;
  }
  b.Emit(insn);
  return true;
}

bool JumpTarget::Lower(ProgramBuilder& b) const {
  PfInsn insn{};
  insn.op = static_cast<uint8_t>(PfOp::kJump);
  int32_t id = b.ChainId(chain_);
  insn.a = id < 0 ? kPfNoIndex : static_cast<uint32_t>(id);
  insn.b = b.InternString(chain_);  // keeps undefined targets printable
  b.Emit(insn);
  return true;
}

bool StateTarget::Lower(ProgramBuilder& b) const {
  PfInsn insn{};
  insn.a = b.InternString(key);
  if (unset) {
    insn.op = static_cast<uint8_t>(PfOp::kStateUnset);
  } else {
    insn.op = static_cast<uint8_t>(PfOp::kStateSet);
    insn.b = b.InternOperand(value);
  }
  b.Emit(insn);
  return true;
}

bool PhaseTarget::Lower(ProgramBuilder& b) const {
  // A phase entry is a literal STATE write of the phase id to the reserved
  // key, so the existing kStateSet handler (and the automaton pass's
  // literal-write classification) covers it with no new target opcode.
  PfInsn insn{};
  insn.op = static_cast<uint8_t>(PfOp::kStateSet);
  insn.a = b.InternString(std::string(kPhaseKeyName));
  Operand literal;
  literal.literal = PhaseId(phase);
  insn.b = b.InternOperand(literal);
  b.Emit(insn);
  return true;
}

bool LogTarget::Lower(ProgramBuilder& b) const {
  PfInsn insn{};
  insn.op = static_cast<uint8_t>(PfOp::kLog);
  insn.a = b.InternString(prefix);
  b.Emit(insn);
  return true;
}

}  // namespace pf::core
