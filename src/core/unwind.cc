#include "src/core/unwind.h"

#include "src/sim/mm.h"

namespace pf::core {

using sim::Addr;
using sim::Mapping;
using sim::Mm;
using sim::Task;

namespace {

// Reads one frame record {saved_fp, ret_pc} with validation.
bool ReadRecord(const Mm& mm, Addr at, uint64_t* saved_fp, uint64_t* ret_pc) {
  return mm.ReadU64(at, saved_fp) && mm.ReadU64(at + 8, ret_pc);
}

// Finds the ground-truth (unwind-table) index whose record address is `at`;
// returns -1 if absent.
int FindTableIndex(const Task& task, Addr at) {
  const auto& gt = task.mm.frames();
  for (int i = static_cast<int>(gt.size()) - 1; i >= 0; --i) {
    if (gt[static_cast<size_t>(i)].record == at) {
      return i;
    }
  }
  return -1;
}

// Prologue-scan fallback: search upward (toward older frames) for the next
// plausible frame record — a 16-byte slot whose second word is a return
// address inside some mapped image.
Addr PrologueScan(const Task& task, Addr from) {
  const Mm& mm = task.mm;
  const Addr top = mm.stack_top();
  for (Addr a = from + sim::kFrameRecordSize; a + sim::kFrameRecordSize <= top; a += 8) {
    uint64_t candidate_pc = 0;
    if (!mm.ReadU64(a + 8, &candidate_pc)) {
      break;
    }
    if (candidate_pc != 0 && mm.FindMapping(candidate_pc) != nullptr) {
      return a;
    }
  }
  return sim::kNullAddr;
}

}  // namespace

UnwindResult UnwindUserStack(const Task& task) {
  UnwindResult result;
  const Mm& mm = task.mm;
  Addr cur = mm.fp();
  if (cur == 0) {
    // No frames at all (kernel thread / not yet set up): empty but valid.
    result.status = UnwindStatus::kOk;
    return result;
  }

  for (int n = 0; n < kMaxUnwindFrames; ++n) {
    if (!mm.ContainsUser(cur, sim::kFrameRecordSize)) {
      // FP register or chain points outside the stack: malicious/corrupt.
      result.status = UnwindStatus::kAborted;
      return result;
    }
    uint64_t saved_fp = 0;
    uint64_t ret_pc = 0;
    if (!ReadRecord(mm, cur, &saved_fp, &ret_pc)) {
      result.status = UnwindStatus::kAborted;
      return result;
    }
    const Mapping* map = mm.FindMapping(ret_pc);
    if (map == nullptr) {
      // Return address outside every image: stop; what we have so far came
      // from validated records, but treat a first-frame failure as abort.
      result.status = result.frames.empty() ? UnwindStatus::kAborted : UnwindStatus::kTruncated;
      return result;
    }
    BinFrame frame;
    frame.pc = ret_pc;
    frame.image = map->file;
    frame.image_path = map->path;
    frame.offset = ret_pc - map->base;
    result.frames.push_back(std::move(frame));

    if (saved_fp == 0) {
      result.status = UnwindStatus::kOk;  // outermost frame reached
      return result;
    }
    if (mm.ContainsUser(saved_fp, sim::kFrameRecordSize) && saved_fp > cur) {
      // Healthy frame-pointer chain (monotonicity defeats cycle DoS).
      cur = saved_fp;
      continue;
    }

    // Chain broken: the caller's frame was emitted without FP bookkeeping.
    int idx = FindTableIndex(task, cur);
    if (idx > 0) {
      const sim::FrameInfo& caller = task.mm.frames()[static_cast<size_t>(idx) - 1];
      const Mapping* cmap = mm.FindMapping(caller.pc);
      if (cmap != nullptr && cmap->has_eh_info) {
        // Unwind-table path: tables give the exact record location; its
        // *content* is still untrusted user memory, validated next loop.
        uint64_t table_pc = 0;
        if (!mm.ReadU64(caller.record + 8, &table_pc) || table_pc != caller.pc) {
          // Memory no longer matches the tables: tampering detected.
          result.status = UnwindStatus::kAborted;
          return result;
        }
        cur = caller.record;
        continue;
      }
    }
    // Heuristic path.
    Addr next = PrologueScan(task, cur);
    if (next == sim::kNullAddr) {
      result.status = UnwindStatus::kTruncated;
      return result;
    }
    cur = next;
  }
  result.status = UnwindStatus::kTruncated;  // frame limit
  return result;
}

InterpUnwindResult UnwindInterpStack(const Task& task) {
  InterpUnwindResult result;
  const Mm& mm = task.mm;
  Addr node = mm.interp_head();
  if (node == sim::kNullAddr) {
    result.status = UnwindStatus::kOk;
    return result;
  }
  for (int n = 0; n < kMaxInterpFrames; ++n) {
    if (node == sim::kNullAddr) {
      result.status = UnwindStatus::kOk;
      return result;
    }
    if (!mm.ContainsUser(node, 24)) {
      result.status = UnwindStatus::kAborted;
      return result;
    }
    uint64_t next = 0;
    uint32_t script_id = 0;
    uint32_t line = 0;
    uint32_t lang = 0;
    if (!mm.ReadU64(node, &next) || !mm.CopyFromUser(node + 8, &script_id, 4) ||
        !mm.CopyFromUser(node + 12, &line, 4) || !mm.CopyFromUser(node + 16, &lang, 4)) {
      result.status = UnwindStatus::kAborted;
      return result;
    }
    InterpRec rec;
    rec.lang = static_cast<sim::InterpLang>(lang);
    rec.script_id = script_id;
    rec.line = line;
    if (const std::string* path = task.ScriptPath(script_id)) {
      rec.script_path = *path;
    }
    result.frames.push_back(std::move(rec));
    // Arena nodes are bump-allocated: a well-formed list is strictly
    // decreasing in address. This bounds malicious cyclic lists.
    if (next != sim::kNullAddr && next >= node) {
      result.status = UnwindStatus::kAborted;
      return result;
    }
    node = next;
  }
  result.status = UnwindStatus::kTruncated;
  return result;
}

}  // namespace pf::core
