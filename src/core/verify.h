// Load-time verification of arena-packed PF programs (DESIGN.md §5f).
//
// The compiled evaluator executes arbitrary arena bytes with no bounds
// checks on its hot path — the threaded interpreter dispatches straight
// through a label table and indexes the interned pools raw. What makes that
// safe is the same contract eBPF uses: no program reaches the evaluator
// until a load-time verifier has proved, instruction by instruction, that
// every fetch it can perform is in bounds. VerifyProgram is that pass: one
// forward walk over every rule record proving
//
//   * arena integrity — record bounds inside the arena, instruction-aligned,
//     every body opening with RULE_BEGIN naming its own record;
//   * pool safety — every string/labelset/operand/sid-slice reference on
//     every instruction resolves inside its pool;
//   * store discipline — the only mutating ops are STATE_SET/STATE_UNSET and
//     their key/value references are valid STATE slots;
//   * native-escape validity — MATCH_NATIVE/TARGET_NATIVE indices resolve to
//     live module pointers;
//   * jump soundness — every JUMP target is a real chain id (or the explicit
//     kPfNoIndex "undefined chain" sentinel, which the evaluator treats as a
//     fallthrough), and the chain dispatch tables (buckets, entrypoint
//     index) only reference real rule records;
//   * bounded depth — chains reachable from the builtin roots only beyond
//     kMaxChainDepth JUMP hops are flagged. The runtime depth guard already
//     makes such chains unreachable (never executed, not unsafe), so depth
//     findings are warnings by default and errors only under strict_depth —
//     the engine's mandatory commit gate must keep accepting the deep/cyclic
//     rule bases the static analyzer exists to diagnose.
//
// Engine::CompileRuleset runs this pass on every compilation and
// CommitRuleset refuses to publish a generation whose report has errors, so
// a corrupted or miscompiled program can never reach a hook. pfcheck and
// pftables --check surface the same report.
#ifndef SRC_CORE_VERIFY_H_
#define SRC_CORE_VERIFY_H_

#include <vector>

#include "src/analysis/diagnostics.h"
#include "src/core/program.h"

namespace pf::core {

struct VerifyOptions {
  // Escalate depth-exceeded findings from warning to error. Off in the
  // engine's commit gate (the runtime depth guard makes over-deep chains
  // dead, not dangerous); on when a caller wants "every rule reachable" as
  // a hard property.
  bool strict_depth = false;
  // Delta verification (incremental commits): the program is a copy of an
  // already-verified base with records appended from `from_record` and the
  // chains in `recheck_chains` rebuilt. Per-record checks run only on the
  // appended suffix and per-chain table checks only on the rebuilt chains —
  // everything else is byte-identical to the proven base. Global properties
  // (arena alignment, the jump-depth proof) always run over the whole
  // program. Dead records (RuleRecord::rule == nullptr) are skipped in
  // every mode: they are unreachable from all live dispatch tables.
  bool delta = false;
  uint32_t from_record = 0;
  std::vector<int32_t> recheck_chains;
};

struct VerifyResult {
  analysis::AnalysisReport report;
  bool ok() const { return !report.HasErrors(); }
};

// Single forward verification pass over `prog`. Diagnostics use the stable
// codes: arena-truncated, rule-malformed, bad-opcode, pool-oob,
// state-slot-oob, native-oob, jump-target-oob, syscall-arg-oob,
// ctx-mask-invalid, chain-table-oob, classifier-oob, classifier-coverage,
// depth-exceeded, automaton-oob, automaton-malformed, automaton-unsound,
// automaton-dead (warning). The automaton proofs run only when the program
// carries built automaton tables (PfProgram::automata_built).
VerifyResult VerifyProgram(const PfProgram& prog, const VerifyOptions& opts = {});

}  // namespace pf::core

#endif  // SRC_CORE_VERIFY_H_
