#include "src/core/packet.h"

#include "src/sim/task.h"

namespace pf::core {

std::optional<CtxVar> CtxVarFromName(std::string_view name) {
  if (name == "C_INO") return CtxVar::kIno;
  if (name == "C_GEN") return CtxVar::kGen;
  if (name == "C_DEV") return CtxVar::kDev;
  if (name == "C_SID") return CtxVar::kSid;
  if (name == "C_DAC_OWNER") return CtxVar::kDacOwner;
  if (name == "C_TGT_DAC_OWNER") return CtxVar::kTgtDacOwner;
  if (name == "C_TGT_SID") return CtxVar::kTgtSid;
  if (name == "C_PID") return CtxVar::kPid;
  if (name == "C_UID") return CtxVar::kUid;
  if (name == "C_EUID") return CtxVar::kEuid;
  if (name == "C_SIG") return CtxVar::kSig;
  if (name == "C_SYSCALL") return CtxVar::kSyscall;
  return std::nullopt;
}

std::string_view CtxVarName(CtxVar v) {
  switch (v) {
    case CtxVar::kIno: return "C_INO";
    case CtxVar::kGen: return "C_GEN";
    case CtxVar::kDev: return "C_DEV";
    case CtxVar::kSid: return "C_SID";
    case CtxVar::kDacOwner: return "C_DAC_OWNER";
    case CtxVar::kTgtDacOwner: return "C_TGT_DAC_OWNER";
    case CtxVar::kTgtSid: return "C_TGT_SID";
    case CtxVar::kPid: return "C_PID";
    case CtxVar::kUid: return "C_UID";
    case CtxVar::kEuid: return "C_EUID";
    case CtxVar::kSig: return "C_SIG";
    case CtxVar::kSyscall: return "C_SYSCALL";
  }
  return "C_?";
}

std::optional<int64_t> Packet::Resolve(CtxVar v) const {
  switch (v) {
    case CtxVar::kIno:
      return has_object ? std::optional<int64_t>(static_cast<int64_t>(object_id.ino))
                        : std::nullopt;
    case CtxVar::kGen:
      return has_object ? std::optional<int64_t>(static_cast<int64_t>(object_generation))
                        : std::nullopt;
    case CtxVar::kDev:
      return has_object ? std::optional<int64_t>(object_id.dev) : std::nullopt;
    case CtxVar::kSid:
      return has_object ? std::optional<int64_t>(object_sid) : std::nullopt;
    case CtxVar::kDacOwner:
      return has_object ? std::optional<int64_t>(object_owner) : std::nullopt;
    case CtxVar::kTgtDacOwner:
      return has_link_target ? std::optional<int64_t>(link_target_owner) : std::nullopt;
    case CtxVar::kTgtSid:
      return has_link_target ? std::optional<int64_t>(link_target_sid) : std::nullopt;
    case CtxVar::kPid:
      return req && req->task ? std::optional<int64_t>(req->task->pid) : std::nullopt;
    case CtxVar::kUid:
      return req && req->task ? std::optional<int64_t>(req->task->cred.uid) : std::nullopt;
    case CtxVar::kEuid:
      return req && req->task ? std::optional<int64_t>(req->task->cred.euid)
                              : std::nullopt;
    case CtxVar::kSig:
      return req && req->op == sim::Op::kSignalDeliver ? std::optional<int64_t>(req->sig)
                                                       : std::nullopt;
    case CtxVar::kSyscall:
      return req ? std::optional<int64_t>(static_cast<int32_t>(req->syscall_nr))
                 : std::nullopt;
  }
  return std::nullopt;
}

}  // namespace pf::core
