// Audit exporters: render a drained AuditRecord stream as human text or
// JSON-lines (the forensic log format, `pftrace --format` style), render the
// aggregator's live window view (`pftables --audit`), and write the
// pf_audit_* Prometheus families into an exposition (the single writer path
// Engine::MetricsText() uses). Name resolution happens here — records hold
// only integers, so exporters take the trace NameTable to turn sids back
// into MAC type names.
#ifndef SRC_AUDIT_EXPORT_H_
#define SRC_AUDIT_EXPORT_H_

#include <string>
#include <vector>

#include "src/audit/hub.h"
#include "src/audit/record.h"
#include "src/trace/export.h"
#include "src/trace/metrics.h"

namespace pf::audit {

// One record per line:
//   [123.456789] w03 deny op=open subj=httpd_t obj=shadow_t rule=input:1
//   tier=vcache ept=0xdead+0x40 gen=7
std::string RenderText(const std::vector<AuditRecord>& records,
                       const trace::NameTable& names);

// One JSON object per line (jq-friendly), every field present. This is the
// JSONL forensic sink: `pftrace --audit --format=jsonl` and the Table-4
// exploit harness both write it.
std::string RenderJsonLines(const std::vector<AuditRecord>& records,
                            const trace::NameTable& names);

// The aggregator's live view: per-key deny-rate windows, suppression, and
// anomaly flags, plus the hub conservation counters. `pftables --audit`.
std::string RenderWindows(const AuditHub& hub, const trace::NameTable& names);

// Appends the pf_audit_* metric families for `hub` to an exposition in
// progress. The one source of truth for the family/help text — called by
// Engine::MetricsText(), tested by tests/trace/trace_export_test.cc.
void WriteAuditFamilies(trace::PromWriter& w, const AuditHub& hub);

}  // namespace pf::audit

#endif  // SRC_AUDIT_EXPORT_H_
