#include "src/audit/hub.h"

#include <algorithm>

namespace pf::audit {

std::string_view KindName(Kind k) {
  switch (k) {
    case Kind::kDeny:
      return "deny";
    case Kind::kAuditedDeny:
      return "audited_deny";
    case Kind::kLogHit:
      return "log";
    case Kind::kPhase:
      return "phase";
    case Kind::kCount:
      break;
  }
  return "unknown";
}

std::string_view TierName(Tier t) {
  switch (t) {
    case Tier::kLegacy:
      return "legacy";
    case Tier::kCompiled:
      return "compiled";
    case Tier::kVcache:
      return "vcache";
    case Tier::kVcacheState:
      return "vcache_state";
    case Tier::kBypass:
      return "bypass";
    case Tier::kCount:
      break;
  }
  return "unknown";
}

void AuditHub::Enable(const Config& cfg) {
  {
    std::lock_guard<std::mutex> lock(agg_mu_);
    config_ = cfg;
  }
  kinds_.store(cfg.kinds, std::memory_order_relaxed);
  timed_.store(cfg.timed, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
}

void AuditHub::Disable() { enabled_.store(false, std::memory_order_release); }

AuditRing* AuditHub::AllocateRing(size_t worker) {
  std::lock_guard<std::mutex> lock(alloc_mu_);
  AuditRing* existing = rings_[worker].load(std::memory_order_acquire);
  if (existing != nullptr) {
    return existing;  // another emitter won the race
  }
  size_t capacity = trace::kDefaultRingCapacity;
  {
    std::lock_guard<std::mutex> cfg_lock(agg_mu_);
    capacity = config_.ring_capacity;
  }
  owned_.push_back(std::make_unique<AuditRing>(capacity));
  AuditRing* ring = owned_.back().get();
  rings_[worker].store(ring, std::memory_order_release);
  return ring;
}

bool AuditHub::Emit(size_t worker, AuditRecord rec) {
  if ((kinds() & KindBit(static_cast<Kind>(rec.kind))) == 0) {
    return false;
  }
  emitted_.fetch_add(1, std::memory_order_relaxed);

  // Aggregate: window rotation, anomaly flag, token bucket. Everything here
  // is off the authorize fast path by construction — only actual security
  // events reach it.
  {
    AggKey key{rec.chain_id, rec.rule_index, rec.subject_sid,
               (rec.flags & kFlagEptValid) != 0 ? rec.ept_ino : 0,
               (rec.flags & kFlagEptValid) != 0 ? rec.ept_offset : 0};
    std::lock_guard<std::mutex> lock(agg_mu_);
    KeyState& st = windows_[key];
    if (!st.seen) {  // first sighting of this key
      st.seen = true;
      st.tokens = static_cast<double>(config_.bucket_capacity);
      st.refill_ns = rec.ts_ns;
      st.window_start_ns = rec.ts_ns;
    }

    // Sliding deny-rate window: rotate when the current window elapsed. A
    // gap of more than one full window zeroes the trailing count (the spike
    // baseline is "the immediately preceding window", not ancient history).
    if (config_.window_ns > 0 && rec.ts_ns >= st.window_start_ns + config_.window_ns) {
      const uint64_t gap = (rec.ts_ns - st.window_start_ns) / config_.window_ns;
      st.trailing_count = gap == 1 ? st.window_count : 0;
      st.window_start_ns += gap * config_.window_ns;
      if (st.anomaly) {
        st.anomaly = false;
      }
      st.window_count = 0;
    }
    ++st.window_count;
    ++st.total;
    if (st.window_count >= config_.spike_min &&
        static_cast<double>(st.window_count) >
            config_.spike_factor * static_cast<double>(std::max<uint64_t>(
                                       st.trailing_count, 1))) {
      if (!st.anomaly) {
        st.anomaly = true;
        anomalies_.fetch_add(1, std::memory_order_relaxed);
      }
      rec.flags |= kFlagAnomaly;
    }

    // Token bucket: refill by elapsed time, admit while a token remains.
    if (config_.bucket_capacity > 0) {
      if (rec.ts_ns > st.refill_ns) {
        st.tokens += static_cast<double>(rec.ts_ns - st.refill_ns) * 1e-9 *
                     static_cast<double>(config_.refill_per_sec);
        st.tokens = std::min(st.tokens, static_cast<double>(config_.bucket_capacity));
        st.refill_ns = rec.ts_ns;
      }
      if (st.tokens < 1.0) {
        ++st.suppressed_total;
        ++st.pending_suppressed;
        suppressed_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      st.tokens -= 1.0;
      if (st.pending_suppressed > 0) {
        rec.suppressed = st.pending_suppressed;
        rec.flags |= kFlagSuppressedTail;
        st.pending_suppressed = 0;
      }
    }
  }

  if (worker >= kMaxWorkers) {
    worker = kMaxWorkers - 1;  // overflow workers share the last ring
  }
  AuditRing* ring = rings_[worker].load(std::memory_order_acquire);
  if (ring == nullptr) {
    ring = AllocateRing(worker);
  }
  ring->Push(rec);
  return true;
}

std::vector<AuditRecord> AuditHub::Drain() {
  std::vector<AuditRecord> out;
  for (size_t w = 0; w < kMaxWorkers; ++w) {
    AuditRing* ring = rings_[w].load(std::memory_order_acquire);
    if (ring == nullptr) {
      continue;
    }
    AuditRecord rec;
    while (ring->Pop(&rec)) {
      out.push_back(rec);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const AuditRecord& a, const AuditRecord& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  drained_.fetch_add(out.size(), std::memory_order_relaxed);
  return out;
}

uint64_t AuditHub::records() const {
  uint64_t sum = 0;
  for (size_t w = 0; w < kMaxWorkers; ++w) {
    const AuditRing* ring = rings_[w].load(std::memory_order_acquire);
    if (ring != nullptr) {
      sum += ring->pushed();
    }
  }
  return sum;
}

uint64_t AuditHub::ring_drops() const {
  uint64_t sum = 0;
  for (size_t w = 0; w < kMaxWorkers; ++w) {
    const AuditRing* ring = rings_[w].load(std::memory_order_acquire);
    if (ring != nullptr) {
      sum += ring->drops();
    }
  }
  return sum;
}

std::vector<KeyWindow> AuditHub::WindowSnapshot() const {
  std::vector<KeyWindow> out;
  {
    std::lock_guard<std::mutex> lock(agg_mu_);
    out.reserve(windows_.size());
    for (const auto& [key, st] : windows_) {
      out.push_back({key, st.total, st.suppressed_total, st.window_count,
                     st.trailing_count, st.anomaly});
    }
  }
  std::stable_sort(out.begin(), out.end(), [](const KeyWindow& a, const KeyWindow& b) {
    return a.total > b.total;
  });
  return out;
}

void AuditHub::ResetAggregator() {
  std::lock_guard<std::mutex> lock(agg_mu_);
  windows_.clear();
}

}  // namespace pf::audit
