#include "src/audit/export.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace pf::audit {

namespace {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Kind KindOf(const AuditRecord& rec) {
  return rec.kind < static_cast<uint8_t>(Kind::kCount) ? static_cast<Kind>(rec.kind)
                                                       : Kind::kCount;
}

Tier TierOf(const AuditRecord& rec) {
  return rec.tier < static_cast<uint8_t>(Tier::kCount) ? static_cast<Tier>(rec.tier)
                                                       : Tier::kCount;
}

std::string RuleRef(const AuditRecord& rec) {
  if (rec.chain_id < 0) {
    return "-";
  }
  return std::to_string(rec.chain_id) + ":" + std::to_string(rec.rule_index);
}

}  // namespace

std::string RenderText(const std::vector<AuditRecord>& records,
                       const trace::NameTable& names) {
  std::ostringstream out;
  char buf[80];
  for (const AuditRecord& rec : records) {
    std::snprintf(buf, sizeof(buf), "[%" PRIu64 ".%09" PRIu64 "] w%02u %-12s",
                  rec.ts_ns / uint64_t{1000000000}, rec.ts_ns % uint64_t{1000000000},
                  static_cast<unsigned>(rec.worker),
                  std::string(KindName(KindOf(rec))).c_str());
    out << buf << " pid=" << rec.pid << " op=" << trace::NameTable::OpName(rec.op)
        << " subj=" << names.SidName(rec.subject_sid);
    if (KindOf(rec) == Kind::kPhase) {
      std::snprintf(buf, sizeof(buf), " phase=0x%" PRIx64 "->0x%" PRIx64,
                    rec.astate_in, rec.astate_out);
      out << buf;
    } else {
      if ((rec.flags & kFlagHasObject) != 0) {
        std::snprintf(buf, sizeof(buf), " obj=%s(%u:%" PRIu64 " gen=%" PRIu64 ")",
                      names.SidName(rec.object_sid).c_str(), rec.object_dev,
                      rec.object_ino, rec.object_gen);
        out << buf;
      }
      out << " rule=" << RuleRef(rec) << " tier=" << TierName(TierOf(rec));
      if (TierOf(rec) == Tier::kBypass) {
        std::snprintf(buf, sizeof(buf), " cause=0x%x", rec.cause);
        out << buf;
      }
      if (rec.automaton != kNoAutomaton) {
        std::snprintf(buf, sizeof(buf), " automaton=p%u state=0x%" PRIx64 "->0x%" PRIx64,
                      rec.automaton, rec.astate_in, rec.astate_out);
        out << buf;
      }
    }
    if ((rec.flags & kFlagEptValid) != 0) {
      std::snprintf(buf, sizeof(buf), " ept=%u:%" PRIu64 "+0x%" PRIx64, rec.ept_dev,
                    rec.ept_ino, rec.ept_offset);
      out << buf;
    }
    out << " gen=" << rec.generation;
    if ((rec.flags & kFlagTimed) != 0) {
      out << " ctx=" << rec.ctx_ns << "ns total=" << rec.total_ns << "ns";
    }
    if ((rec.flags & kFlagSuppressedTail) != 0) {
      out << " suppressed=" << rec.suppressed;
    }
    if ((rec.flags & kFlagAnomaly) != 0) {
      out << " ANOMALY";
    }
    out << "\n";
  }
  return out.str();
}

std::string RenderJsonLines(const std::vector<AuditRecord>& records,
                            const trace::NameTable& names) {
  std::ostringstream out;
  for (const AuditRecord& rec : records) {
    out << "{\"ts_ns\":" << rec.ts_ns << ",\"worker\":" << rec.worker
        << ",\"kind\":\"" << KindName(KindOf(rec)) << "\",\"pid\":" << rec.pid
        << ",\"op\":\"" << JsonEscape(trace::NameTable::OpName(rec.op))
        << "\",\"subject\":\"" << JsonEscape(names.SidName(rec.subject_sid))
        << "\",\"object\":\"" << JsonEscape(names.SidName(rec.object_sid))
        << "\",\"object_dev\":" << rec.object_dev << ",\"object_ino\":" << rec.object_ino
        << ",\"object_gen\":" << rec.object_gen << ",\"chain\":" << rec.chain_id
        << ",\"rule\":" << rec.rule_index << ",\"generation\":" << rec.generation
        << ",\"tier\":\"" << TierName(TierOf(rec)) << "\",\"cause\":"
        << static_cast<unsigned>(rec.cause) << ",\"automaton\":"
        << (rec.automaton == kNoAutomaton ? -1 : static_cast<int>(rec.automaton))
        << ",\"astate_in\":" << rec.astate_in << ",\"astate_out\":" << rec.astate_out
        << ",\"ept_valid\":" << (((rec.flags & kFlagEptValid) != 0) ? "true" : "false")
        << ",\"ept_dev\":" << rec.ept_dev << ",\"ept_ino\":" << rec.ept_ino
        << ",\"ept_offset\":" << rec.ept_offset << ",\"ctx_ns\":" << rec.ctx_ns
        << ",\"total_ns\":" << rec.total_ns << ",\"suppressed\":" << rec.suppressed
        << ",\"anomaly\":" << (((rec.flags & kFlagAnomaly) != 0) ? "true" : "false")
        << "}\n";
  }
  return out.str();
}

std::string RenderWindows(const AuditHub& hub, const trace::NameTable& names) {
  std::ostringstream out;
  out << "audit: emitted=" << hub.emitted() << " suppressed=" << hub.suppressed()
      << " ring_drops=" << hub.ring_drops() << " drained=" << hub.drained()
      << " anomalies=" << hub.anomalies() << "\n";
  char buf[80];
  for (const KeyWindow& kw : hub.WindowSnapshot()) {
    out << "  rule=";
    if (kw.key.chain_id < 0) {
      out << "-";
    } else {
      out << kw.key.chain_id << ":" << kw.key.rule_index;
    }
    out << " subj=" << names.SidName(kw.key.subject_sid);
    if (kw.key.ept_ino != 0) {
      std::snprintf(buf, sizeof(buf), " ept=%" PRIu64 "+0x%" PRIx64, kw.key.ept_ino,
                    kw.key.ept_offset);
      out << buf;
    }
    out << " total=" << kw.total << " window=" << kw.window_count
        << " trailing=" << kw.trailing_count << " suppressed=" << kw.suppressed
        << (kw.anomaly ? " ANOMALY" : "") << "\n";
  }
  return out.str();
}

void WriteAuditFamilies(trace::PromWriter& w, const AuditHub& hub) {
  w.Family("pf_audit_records_total", "Audit records admitted into the per-worker rings",
           "counter");
  w.Counter("pf_audit_records_total", {}, hub.records());
  w.Family("pf_audit_emitted_total",
           "Audit records emitted by the engine (admitted + suppressed)", "counter");
  w.Counter("pf_audit_emitted_total", {}, hub.emitted());
  w.Family("pf_audit_suppressed_total",
           "Audit records collapsed by per-rule token-bucket suppression", "counter");
  w.Counter("pf_audit_suppressed_total", {}, hub.suppressed());
  w.Family("pf_audit_ring_drops_total", "Audit records evicted unread from full rings",
           "counter");
  w.Counter("pf_audit_ring_drops_total", {}, hub.ring_drops());
  w.Family("pf_audit_drained_total", "Audit records consumed by drains", "counter");
  w.Counter("pf_audit_drained_total", {}, hub.drained());
  w.Family("pf_audit_anomalies_total",
           "Aggregation keys whose deny-rate window spiked past its trailing window",
           "counter");
  w.Counter("pf_audit_anomalies_total", {}, hub.anomalies());
  w.Family("pf_audit_window_keys", "Aggregation keys with live deny-rate windows",
           "gauge");
  w.Gauge("pf_audit_window_keys", {}, static_cast<double>(hub.WindowSnapshot().size()));
}

}  // namespace pf::audit
