// pfaudit record format (DESIGN.md §5j "Security-event audit pipeline").
//
// One AuditRecord describes one *security event* with full decision
// provenance: a denial (or audit-mode would-be denial), a LOG-target hit, or
// an `@phase` protocol transition. Where a TraceRecord answers "what did the
// engine spend time on", an AuditRecord answers "who attacked what, via
// which binding, caught by which rule, served from which tier" — the
// forensic attribution the paper's Table-4 exploit matrix implies but plain
// counters cannot provide.
//
// Records are fixed-size (128 bytes), trivially copyable, and hold only
// plain integers — no pointers, no strings — so the engine can publish one
// into the same lock-free per-worker ring the tracer uses
// (trace::RecordRing) and a consumer thread (pftables --audit, the JSONL
// sink, a test) can interpret it without touching engine state. Name
// resolution (op names, MAC labels) happens at export time (export.h).
//
// This header is dependency-free on purpose, mirroring trace/record.h.
#ifndef SRC_AUDIT_RECORD_H_
#define SRC_AUDIT_RECORD_H_

#include <cstdint>
#include <string_view>
#include <type_traits>

namespace pf::audit {

// Whether audit support is compiled into this build. With -DPF_AUDIT=OFF
// (which defines PF_NO_AUDIT) every emission gate folds to constant false
// and the pipeline is dead-code-eliminated — the hot path carries not even
// the relaxed load, same contract as PF_NO_TRACE.
#ifdef PF_NO_AUDIT
inline constexpr bool kAuditCompiledIn = false;
#else
inline constexpr bool kAuditCompiledIn = true;
#endif

// Security-event kinds, one bit each in the hub's enable mask.
enum class Kind : uint8_t {
  kDeny = 0,      // Authorize returned a denial
  kAuditedDeny,   // audit-only mode: denial recorded, access allowed
  kLogHit,        // a LOG target fired during the decision
  kPhase,         // the task's @phase key transitioned
  kCount,
};

inline constexpr uint32_t KindBit(Kind k) {
  return 1u << static_cast<uint32_t>(k);
}
inline constexpr uint32_t kAllKinds = (1u << static_cast<uint32_t>(Kind::kCount)) - 1;

// Which tier of the engine served the decision the event belongs to.
enum class Tier : uint8_t {
  kLegacy = 0,   // legacy tree-walker traversal
  kCompiled,     // arena-program evaluator traversal (cache miss or disabled)
  kVcache,       // pure verdict-cache hit, no traversal
  kVcacheState,  // stateful-tier hit: automaton-extended key, effects replayed
  kBypass,       // unlowerable stateful chain: traversed, never cached
  kCount,
};

std::string_view KindName(Kind k);
std::string_view TierName(Tier t);

// Record flags.
inline constexpr uint16_t kFlagEptValid = 1u << 0;   // entrypoint fields are set
inline constexpr uint16_t kFlagHasObject = 1u << 1;  // object fields are set
// The aggregator's deny-rate window for this record's key spiked past the
// configured factor of its trailing window when this record was admitted.
inline constexpr uint16_t kFlagAnomaly = 1u << 2;
// This record ends a token-bucket suppression run for its key; `suppressed`
// holds how many records of the run were collapsed into this one.
inline constexpr uint16_t kFlagSuppressedTail = 1u << 3;
// Per-stage ns fields are meaningful (timing was armed for this decision).
inline constexpr uint16_t kFlagTimed = 1u << 4;
// The serving decision was keyed on automaton state (astate_in/out valid).
inline constexpr uint16_t kFlagStateKey = 1u << 5;

// No automaton protocol attributed.
inline constexpr uint16_t kNoAutomaton = 0xffff;

// One fixed-size audit record. Field use by kind:
//
//   kDeny /        everything below. chain_id/rule_index name the
//   kAuditedDeny   verdict-producing rule in the compiled program (-1 when
//                  the chain policy decided or the legacy walker ran);
//                  tier/cause say how the decision was served; astate_in is
//                  the folded automaton state the decision keyed on and
//                  astate_out the fold after its recorded effects
//                  (kFlagStateKey).
//   kLogHit        chain_id/rule_index = the LOG rule (compiled path; -1
//                  from the legacy walker), other fields as for kDeny.
//   kPhase         astate_in/astate_out carry the @phase transition as
//                  (from, to) PhaseId values; chain_id/rule_index are -1.
//
// The `suppressed` field is written by the aggregator, not the engine: a
// record admitted after a suppression run carries the collapsed count.
struct AuditRecord {
  uint64_t ts_ns = 0;        // steady-clock ns when the record was emitted
  uint64_t generation = 0;   // ruleset generation that served the decision
  uint64_t ept_ino = 0;      // entrypoint image inode (kFlagEptValid)
  uint64_t ept_offset = 0;   // entrypoint binary-relative PC
  uint64_t object_ino = 0;   // object inode number (kFlagHasObject)
  uint64_t object_gen = 0;   // object inode generation (recycling-safe id)
  uint64_t astate_in = 0;    // folded automaton state in / phase-from
  uint64_t astate_out = 0;   // folded automaton state out / phase-to
  uint64_t total_ns = 0;     // whole-decision ns (kFlagTimed)
  uint64_t ctx_ns = 0;       // context-fetch share of total_ns (kFlagTimed)
  uint32_t subject_sid = 0;  // MAC label of the acting task
  uint32_t object_sid = 0;   // MAC label of the object (kFlagHasObject)
  uint32_t ept_dev = 0;      // entrypoint image device
  uint32_t object_dev = 0;   // object device (kFlagHasObject)
  int32_t chain_id = -1;     // compiled-program chain id of the matched rule
  int32_t rule_index = -1;   // rule index within that chain
  uint32_t pid = 0;          // acting task id
  uint32_t suppressed = 0;   // records collapsed into this one (aggregator)
  uint16_t automaton = kNoAutomaton;  // serving protocol id (stateful tier)
  uint16_t flags = 0;        // kFlag*
  uint16_t worker = 0;       // producing worker index
  uint8_t op = 0;            // sim::Op of the request
  uint8_t kind = 0;          // Kind
  uint8_t tier = 0;          // Tier
  uint8_t cause = 0;         // kBypass* cause bits (Tier::kBypass)
  uint8_t reserved[2] = {};  // pad to 128 bytes
};

static_assert(sizeof(AuditRecord) == 128, "two cache lines, sixteen ring words");
static_assert(std::is_trivially_copyable_v<AuditRecord>,
              "ring publication word-copies records");

}  // namespace pf::audit

#endif  // SRC_AUDIT_RECORD_H_
