// Audit control plane: enablement, per-worker record rings, and the
// sliding-window aggregator (DESIGN.md §5j).
//
// One AuditHub lives in each Engine next to the TraceHub. Disabled it costs
// one relaxed load per Authorize (the same contract as TraceHub::Emit);
// enabled, the engine emits an AuditRecord per security event — denials,
// LOG hits, @phase transitions — through the aggregator, which
//
//   * keeps a deny-rate window per (rule, subject sid, entrypoint) key,
//     flagging records whose current-window rate spikes past a configurable
//     factor of the trailing window (kFlagAnomaly),
//   * rate-limits noisy keys with a token bucket: suppressed records are
//     counted per key and globally, and the first record admitted after a
//     suppression run carries the collapsed count (kFlagSuppressedTail) —
//     the stream never silently loses information, it only collapses runs,
//   * pushes admitted records into the emitting worker's lock-free ring
//     (trace::RecordRing<AuditRecord>), where ring eviction of unread
//     records is itself counted.
//
// Conservation contract, tested by tests/audit/audit_pipeline_test.cc:
//   emitted == pushed + suppressed, and pushed == drained + ring_drops +
//   still-buffered. Nothing the engine emits is ever unaccounted for.
#ifndef SRC_AUDIT_HUB_H_
#define SRC_AUDIT_HUB_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/audit/record.h"
#include "src/trace/ring.h"

namespace pf::audit {

using AuditRing = trace::RecordRing<AuditRecord>;

// Aggregation key: the ISSUE's (rule, subject sid, entrypoint) triple. A
// phase record (chain_id = -1) aggregates per (subject, entrypoint).
struct AggKey {
  int32_t chain_id = -1;
  int32_t rule_index = -1;
  uint32_t subject_sid = 0;
  uint64_t ept_ino = 0;
  uint64_t ept_offset = 0;

  bool operator==(const AggKey&) const = default;
};

struct AggKeyHash {
  size_t operator()(const AggKey& k) const {
    uint64_t h = 0x9e3779b97f4a7c15ull;
    auto mix = [&h](uint64_t v) {
      h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    };
    mix((static_cast<uint64_t>(static_cast<uint32_t>(k.chain_id)) << 32) |
        static_cast<uint32_t>(k.rule_index));
    mix(k.subject_sid);
    mix(k.ept_ino);
    mix(k.ept_offset);
    return static_cast<size_t>(h);
  }
};

// One aggregator key's live window state, as exposed by WindowSnapshot()
// (the `pftables --audit` view and the pf_audit_* metrics).
struct KeyWindow {
  AggKey key;
  uint64_t total = 0;            // records admitted for this key
  uint64_t suppressed = 0;       // records collapsed by the token bucket
  uint64_t window_count = 0;     // records in the current window
  uint64_t trailing_count = 0;   // records in the last full window
  bool anomaly = false;          // current window spiked past the trailing one
};

class AuditHub {
 public:
  static constexpr size_t kMaxWorkers = 64;

  struct Config {
    size_t ring_capacity = trace::kDefaultRingCapacity;
    uint32_t kinds = kAllKinds;  // Kind enable mask (KindBit)
    // Token-bucket suppression per aggregation key: `bucket_capacity` burst
    // records, refilled at `refill_per_sec`. 0 capacity disables suppression.
    uint32_t bucket_capacity = 64;
    uint32_t refill_per_sec = 16;
    // Deny-rate anomaly detection: a key whose current `window_ns` window
    // holds at least `spike_min` records and exceeds `spike_factor` times
    // its trailing window gets kFlagAnomaly on further records.
    uint64_t window_ns = 1'000'000'000ull;
    double spike_factor = 8.0;
    uint64_t spike_min = 16;
    // Arm per-decision stage timing even when tracing is inactive (two
    // steady-clock reads per audited decision; off by default so the
    // audit-enabled hot path stays within the CI overhead gate).
    bool timed = false;
  };

  void Enable(const Config& cfg);
  void Enable() { Enable(Config{}); }
  void Disable();

  // The producer-side gate: one relaxed load. Everything else in this class
  // is only reachable behind it.
  bool enabled() const {
    if constexpr (!kAuditCompiledIn) {
      return false;
    }
    return enabled_.load(std::memory_order_relaxed);
  }
  bool timed() const { return timed_.load(std::memory_order_relaxed); }
  uint32_t kinds() const { return kinds_.load(std::memory_order_relaxed); }

  // Producer side: aggregate (windows, token bucket, anomaly flag) and push
  // into `worker`'s ring. Returns false when the record was suppressed.
  // Callers must have seen enabled(); records whose kind bit is off are
  // dropped silently (not counted as emitted).
  bool Emit(size_t worker, AuditRecord rec);

  // Consumer side: drain every ring, merge-sorted by timestamp.
  std::vector<AuditRecord> Drain();

  // Conservation counters (see the contract above).
  uint64_t emitted() const { return emitted_.load(std::memory_order_relaxed); }
  uint64_t suppressed() const { return suppressed_.load(std::memory_order_relaxed); }
  uint64_t drained() const { return drained_.load(std::memory_order_relaxed); }
  uint64_t records() const;     // pushed into rings, summed over workers
  uint64_t ring_drops() const;  // evicted unread, summed over workers

  // Aggregator view for `pftables --audit` and the metrics families.
  // Non-destructive; ordered by total descending.
  std::vector<KeyWindow> WindowSnapshot() const;
  // Keys currently flagged anomalous.
  uint64_t anomalies() const { return anomalies_.load(std::memory_order_relaxed); }

  // Drops every aggregator window and token bucket (rings are untouched).
  void ResetAggregator();

  const AuditRing* ring(size_t worker) const {
    return worker < kMaxWorkers
               ? rings_[worker].load(std::memory_order_acquire)
               : nullptr;
  }

 private:
  struct KeyState {
    double tokens = 0;
    uint64_t refill_ns = 0;        // last token refill timestamp
    uint64_t window_start_ns = 0;  // current window origin
    uint64_t window_count = 0;
    uint64_t trailing_count = 0;
    uint64_t total = 0;
    uint64_t suppressed_total = 0;
    uint32_t pending_suppressed = 0;  // run collapsed since the last admit
    bool anomaly = false;
    bool seen = false;  // a ts_ns of 0 is valid, so 0 is not a sentinel
  };

  AuditRing* AllocateRing(size_t worker);

  std::atomic<bool> enabled_{false};
  std::atomic<bool> timed_{false};
  std::atomic<uint32_t> kinds_{kAllKinds};

  Config config_;  // written by Enable() only, read under agg_mu_

  std::array<std::atomic<AuditRing*>, kMaxWorkers> rings_{};
  std::vector<std::unique_ptr<AuditRing>> owned_;
  std::mutex alloc_mu_;

  // Aggregator state. Security events are rare by construction (denies, LOG
  // hits, phase flips — never the accept fast path), so one mutex suffices;
  // the hot path never reaches it.
  mutable std::mutex agg_mu_;
  std::unordered_map<AggKey, KeyState, AggKeyHash> windows_;

  std::atomic<uint64_t> emitted_{0};
  std::atomic<uint64_t> suppressed_{0};
  std::atomic<uint64_t> drained_{0};
  std::atomic<uint64_t> anomalies_{0};
};

}  // namespace pf::audit

#endif  // SRC_AUDIT_HUB_H_
